//! Horizontal fragmentation of the term–document matrix (the paper's Step 1).
//!
//! In the flattened Moa/MonetDB execution model, the term–document matrix is
//! a BAT of `(term, doc, tf)` triples and a query's posting retrieval is a
//! *set-at-a-time selection over that table* — work proportional to the
//! table's volume, not to the query's result. Fragmenting the table by
//! document frequency therefore directly cuts query time:
//!
//! * **Fragment A** — the "most interesting" (lowest-df, highest-idf) terms;
//!   a small share of the volume. Evaluating only A is the paper's *unsafe*
//!   technique: fast, but quality drops when query terms live in B.
//! * **Fragment B** — the frequent rest, the bulk of the volume. The *safe*
//!   variant consults an early quality check ([`crate::safety`]) and
//!   *switches in* fragment B when needed — either by scanning B or through
//!   a **non-dense index** ([`moa_storage::SparseIndex`]) over B's sorted
//!   term column, the acceleration the paper proposes.

use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

use moa_storage::{Bat, Column, Scalar, SparseIndex};
use moa_topn::TopNHeap;

use crate::accum::EpochAccumulator;
use crate::error::{IrError, Result};
use crate::index::InvertedIndex;
use crate::ranking::RankingModel;
use crate::safety::{SwitchDecision, SwitchPolicy};
use crate::scorer::{ScoreBounds, ScoreKernel, TermScorer};
use crate::threshold::BoundGate;

/// How the fragment boundary is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FragmentSpec {
    /// Fragment A holds the rarest terms whose cumulative posting volume
    /// stays below this fraction of the total (0, 1].
    VolumeFraction(f64),
    /// Fragment A holds this fraction of the observed terms, rarest first
    /// (the paper's "95% most interesting terms" phrasing).
    TermFraction(f64),
    /// Fragment A holds every term with `df <=` this threshold.
    DfThreshold(u32),
}

/// A flat `(term, doc, tf)` table sorted by term — the BAT realization of
/// one fragment, with an optional non-dense index on the term column.
#[derive(Debug, Clone)]
pub struct TdTable {
    terms: Vec<u32>,
    docs: Vec<u32>,
    tfs: Vec<u32>,
    /// Sorted term column as a BAT (for sparse-index lookups).
    term_bat: Bat,
    sparse: Option<SparseIndex>,
}

/// Scan statistics of one posting-retrieval pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[must_use]
pub struct ScanStats {
    /// Table entries inspected.
    pub scanned: usize,
    /// Entries matching the query terms (and therefore gathered).
    pub matched: usize,
    /// Sparse-index range lookups issued (0 for plain scans).
    pub lookups: usize,
}

/// Table entries inspected between deadline polls inside the gated
/// retrieval passes: coarse enough that the poll branch is amortized to
/// noise, fine enough that an expired deadline stops a scan within about
/// a thousand entries instead of at the end of the fragment.
pub const SCAN_POLL_STRIDE: usize = 1024;

impl TdTable {
    /// Build a fragment table holding the postings of the selected terms.
    pub fn from_index(index: &InvertedIndex, keep: impl Fn(u32) -> bool) -> TdTable {
        let mut terms = Vec::new();
        let mut docs = Vec::new();
        let mut tfs = Vec::new();
        for term in 0..index.vocab_size() as u32 {
            if !keep(term) {
                continue;
            }
            index
                .for_each_posting(term, |doc, tf| {
                    terms.push(term);
                    docs.push(doc);
                    tfs.push(tf);
                })
                .expect("term id in range");
        }
        let term_bat = Bat::dense(Column::from(terms.clone()));
        TdTable {
            terms,
            docs,
            tfs,
            term_bat,
            sparse: None,
        }
    }

    /// Number of `(term, doc, tf)` entries (the fragment's volume).
    pub fn volume(&self) -> usize {
        self.terms.len()
    }

    /// Whether a sparse (non-dense) index has been built.
    pub fn has_sparse_index(&self) -> bool {
        self.sparse.is_some()
    }

    /// The sparse index's block size (lookup granularity), when built —
    /// the cost model's slack term for indexed access.
    pub fn sparse_block_size(&self) -> Option<usize> {
        self.sparse.as_ref().map(SparseIndex::block_size)
    }

    /// Build the non-dense index on the sorted term column with the given
    /// block size.
    pub fn build_sparse_index(&mut self, block_size: usize) -> Result<()> {
        self.sparse = Some(SparseIndex::build(&self.term_bat, block_size)?);
        Ok(())
    }

    /// Retrieve the postings of `query_terms` by scanning the whole table
    /// (the un-indexed BAT selection): cost = volume.
    pub fn postings_scan(
        &self,
        query_terms: &HashSet<u32>,
        on_posting: impl FnMut(u32, u32, u32),
    ) -> ScanStats {
        self.postings_scan_while(query_terms, on_posting, || true).0
    }

    /// [`TdTable::postings_scan`] with a deadline hook: `keep_going` is
    /// polled every [`SCAN_POLL_STRIDE`] inspected entries and the scan
    /// stops early (returning `false` alongside the partial stats) the
    /// first time it answers `false`. The scanned count then reflects the
    /// entries actually inspected, not the fragment volume.
    pub fn postings_scan_while(
        &self,
        query_terms: &HashSet<u32>,
        mut on_posting: impl FnMut(u32, u32, u32),
        mut keep_going: impl FnMut() -> bool,
    ) -> (ScanStats, bool) {
        let mut stats = ScanStats::default();
        for i in 0..self.terms.len() {
            if i % SCAN_POLL_STRIDE == 0 && !keep_going() {
                return (stats, false);
            }
            stats.scanned += 1;
            if query_terms.contains(&self.terms[i]) {
                stats.matched += 1;
                on_posting(self.terms[i], self.docs[i], self.tfs[i]);
            }
        }
        (stats, true)
    }

    /// Retrieve the postings of `query_terms` through the non-dense index:
    /// cost = the covering blocks of each term's run. Falls back to a full
    /// scan when no index has been built.
    pub fn postings_indexed(
        &self,
        query_terms: &HashSet<u32>,
        on_posting: impl FnMut(u32, u32, u32),
    ) -> Result<ScanStats> {
        self.postings_indexed_while(query_terms, on_posting, || true)
            .map(|(stats, _)| stats)
    }

    /// [`TdTable::postings_indexed`] with the same deadline hook as
    /// [`TdTable::postings_scan_while`]: polled once per term lookup and
    /// every [`SCAN_POLL_STRIDE`] inspected entries within a term's
    /// covering range.
    pub fn postings_indexed_while(
        &self,
        query_terms: &HashSet<u32>,
        mut on_posting: impl FnMut(u32, u32, u32),
        mut keep_going: impl FnMut() -> bool,
    ) -> Result<(ScanStats, bool)> {
        let Some(sparse) = &self.sparse else {
            return Ok(self.postings_scan_while(query_terms, on_posting, keep_going));
        };
        let mut stats = ScanStats::default();
        let mut sorted_terms: Vec<u32> = query_terms.iter().copied().collect();
        sorted_terms.sort_unstable();
        for term in sorted_terms {
            if !keep_going() {
                return Ok((stats, false));
            }
            let range = sparse.lookup_range(&Scalar::U32(term), &Scalar::U32(term))?;
            stats.lookups += 1;
            for (k, i) in (range.start..range.end).enumerate() {
                if k > 0 && k % SCAN_POLL_STRIDE == 0 && !keep_going() {
                    return Ok((stats, false));
                }
                stats.scanned += 1;
                if self.terms[i] == term {
                    stats.matched += 1;
                    on_posting(term, self.docs[i], self.tfs[i]);
                }
            }
        }
        Ok((stats, true))
    }
}

/// The fragmented term–document matrix plus shared collection statistics.
#[derive(Debug, Clone)]
pub struct FragmentedIndex {
    index: Arc<InvertedIndex>,
    spec: FragmentSpec,
    in_a: Vec<bool>,
    /// Largest df found in fragment A (boundary documentation).
    df_boundary: u32,
    a: TdTable,
    b: TdTable,
}

impl FragmentedIndex {
    /// Fragment an index according to `spec`.
    pub fn build(index: Arc<InvertedIndex>, spec: FragmentSpec) -> Result<FragmentedIndex> {
        let mut in_a = vec![false; index.vocab_size()];
        let by_df = index.terms_by_df_asc();
        let observed = by_df.len();
        let total_volume: usize = index.num_postings();
        if observed == 0 || total_volume == 0 {
            return Err(IrError::InvalidConfig(
                "cannot fragment an empty index".into(),
            ));
        }
        let mut df_boundary = 0u32;
        match spec {
            FragmentSpec::VolumeFraction(f) => {
                if !(0.0 < f && f <= 1.0) {
                    return Err(IrError::InvalidConfig(format!(
                        "volume fraction {f} outside (0, 1]"
                    )));
                }
                let budget = (f * total_volume as f64) as usize;
                let mut acc = 0usize;
                for &t in &by_df {
                    let run = index.df(t)? as usize;
                    if acc + run > budget && acc > 0 {
                        break;
                    }
                    acc += run;
                    in_a[t as usize] = true;
                    df_boundary = df_boundary.max(index.df(t)?);
                }
            }
            FragmentSpec::TermFraction(f) => {
                if !(0.0 < f && f <= 1.0) {
                    return Err(IrError::InvalidConfig(format!(
                        "term fraction {f} outside (0, 1]"
                    )));
                }
                let count = ((f * observed as f64).round() as usize).clamp(1, observed);
                for &t in by_df.iter().take(count) {
                    in_a[t as usize] = true;
                    df_boundary = df_boundary.max(index.df(t)?);
                }
            }
            FragmentSpec::DfThreshold(th) => {
                for &t in &by_df {
                    if index.df(t)? <= th {
                        in_a[t as usize] = true;
                        df_boundary = df_boundary.max(index.df(t)?);
                    }
                }
            }
        }
        let a = TdTable::from_index(&index, |t| in_a[t as usize]);
        let b = TdTable::from_index(&index, |t| {
            !in_a[t as usize] && index.df(t).map(|d| d > 0).unwrap_or(false)
        });
        Ok(FragmentedIndex {
            index,
            spec,
            in_a,
            df_boundary,
            a,
            b,
        })
    }

    /// The fragmentation specification used.
    pub fn spec(&self) -> FragmentSpec {
        self.spec
    }

    /// The underlying unfragmented index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Whether a term belongs to fragment A.
    pub fn term_in_a(&self, term: u32) -> bool {
        self.in_a.get(term as usize).copied().unwrap_or(false)
    }

    /// Largest document frequency of any fragment-A term.
    pub fn df_boundary(&self) -> u32 {
        self.df_boundary
    }

    /// Fragment A (interesting terms).
    pub fn fragment_a(&self) -> &TdTable {
        &self.a
    }

    /// Fragment B (frequent terms).
    pub fn fragment_b(&self) -> &TdTable {
        &self.b
    }

    /// Mutable fragment A, e.g. to build its non-dense index.
    pub fn fragment_a_mut(&mut self) -> &mut TdTable {
        &mut self.a
    }

    /// Mutable fragment B, e.g. to build its non-dense index.
    pub fn fragment_b_mut(&mut self) -> &mut TdTable {
        &mut self.b
    }

    /// A's share of the total posting volume.
    pub fn volume_fraction_a(&self) -> f64 {
        let total = (self.a.volume() + self.b.volume()).max(1);
        self.a.volume() as f64 / total as f64
    }

    /// A's share of the observed terms.
    pub fn term_fraction_a(&self) -> f64 {
        let in_a = self
            .in_a
            .iter()
            .enumerate()
            .filter(|&(t, &ia)| ia && self.index.df(t as u32).map(|d| d > 0).unwrap_or(false))
            .count();
        let observed = self.index.terms_by_df_asc().len().max(1);
        in_a as f64 / observed as f64
    }
}

/// Query evaluation strategy over a fragmented index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The unoptimized baseline: scan the full (A + B) volume.
    FullScan,
    /// The unsafe technique: retrieve (and score) fragment A only.
    AOnly {
        /// Access A through its non-dense index instead of scanning it.
        use_a_index: bool,
    },
    /// The safe technique: scan A, consult the early quality check, and
    /// switch in fragment B when needed.
    Switch {
        /// Access B through its non-dense index instead of scanning it.
        use_b_index: bool,
    },
}

/// Report of a fragmented query evaluation.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct FragSearchReport {
    /// Top `(doc, score)` pairs, best first.
    pub top: Vec<(u32, f64)>,
    /// Total table entries inspected across fragments.
    pub postings_scanned: usize,
    /// Score probes actually evaluated (one per query *position* × matched
    /// posting of a surviving candidate — duplicated query terms probe
    /// twice, exactly as the naive evaluators score twice).
    pub postings_scored: usize,
    /// Score probes bypassed because the document's upper bound could not
    /// enter the top-N heap. `postings_scored + postings_pruned` equals the
    /// total probe volume of the gathered postings.
    pub postings_pruned: usize,
    /// Documents whose exact score was computed and offered to the heap.
    pub candidates: usize,
    /// Documents abandoned by the upper-bound test before any scoring.
    pub bound_exits: usize,
    /// Sparse-index range lookups issued while gathering.
    pub seeks: usize,
    /// Whether fragment B was consulted.
    pub used_b: bool,
    /// The safety decision, when the strategy made one.
    pub decision: Option<SwitchDecision>,
    /// Whether the evaluation was truncated by an expired per-query
    /// deadline. The gather passes poll the gate every
    /// [`SCAN_POLL_STRIDE`] inspected entries (stopping mid-fragment with
    /// partial scanned counts and an empty `top`), the accumulator loops
    /// poll per stride of accumulated postings, and the bound-pruned
    /// score pass polls per candidate — so everything in `top` is an
    /// exactly scored document.
    pub timed_out: bool,
}

impl FragSearchReport {
    fn empty() -> FragSearchReport {
        FragSearchReport {
            top: Vec::new(),
            postings_scanned: 0,
            postings_scored: 0,
            postings_pruned: 0,
            candidates: 0,
            bound_exits: 0,
            seeks: 0,
            used_b: false,
            decision: None,
            timed_out: false,
        }
    }
}

/// A reusable evaluator over a fragmented index. Scoring goes through the
/// shared [`ScoreKernel`] (precomputed per-term constants and cached
/// per-document norms), and the sparse accumulators use epoch markers —
/// the same query kernel as [`crate::eval::Searcher`] and
/// [`crate::daat::DaatSearcher`].
///
/// Evaluation is *gather–bound–score*: one set-at-a-time pass per fragment
/// gathers the query terms' postings into per-term buckets (the scan cost
/// the fragmentation experiments measure), a bound pass accumulates each
/// touched document's score **upper bound** from the catalog's per-term
/// maxima, and only documents whose bound still passes
/// [`moa_topn::TopNHeap::would_enter`] are scored exactly — in original
/// query-position order, so surviving scores are bit-identical to the
/// set-at-a-time and document-at-a-time evaluators. Fragment-B probes of
/// hopeless documents are thereby skipped instead of paying full scoring.
#[derive(Debug)]
pub struct FragSearcher {
    frag: Arc<FragmentedIndex>,
    kernel: Arc<ScoreKernel>,
    policy: SwitchPolicy,
    /// The per-term block-max bound tables, built lazily on the first
    /// search and shared (same `Arc`) with the DAAT kernel when both run
    /// under one [`crate::physical::EngineSet`].
    bound_tables: Arc<OnceLock<ScoreBounds>>,
    /// Scratch: per-document score upper bounds of the current query.
    ub_accum: EpochAccumulator,
}

impl FragSearcher {
    /// Create an evaluator with a ranking model and switch policy.
    pub fn new(
        frag: Arc<FragmentedIndex>,
        model: RankingModel,
        policy: SwitchPolicy,
    ) -> FragSearcher {
        let kernel = Arc::new(ScoreKernel::new(model, frag.index()));
        FragSearcher::with_shared(frag, kernel, Arc::new(OnceLock::new()), policy)
    }

    /// Create an evaluator sharing existing per-index state: `kernel` must
    /// have been built for the same index and the desired ranking model,
    /// and `bound_tables` caches the lazily built [`ScoreBounds`] across
    /// engine paths — the physical layer builds both once per
    /// `(index, model)` and shares them everywhere.
    pub fn with_shared(
        frag: Arc<FragmentedIndex>,
        kernel: Arc<ScoreKernel>,
        bound_tables: Arc<OnceLock<ScoreBounds>>,
        policy: SwitchPolicy,
    ) -> FragSearcher {
        let n = frag.index().num_docs();
        FragSearcher {
            frag,
            kernel,
            policy,
            bound_tables,
            ub_accum: EpochAccumulator::new(n),
        }
    }

    /// The fragmented index this searcher evaluates over.
    pub fn fragments(&self) -> &Arc<FragmentedIndex> {
        &self.frag
    }

    /// Retire any scratch state an abandoned evaluation may have left
    /// mid-accumulation (e.g. a panic caught at a serving-worker
    /// boundary): the epoch bump invalidates partial sums in O(1),
    /// restoring the accumulator invariant the next query relies on.
    pub fn reset_scratch(&mut self) {
        self.ub_accum.retire();
    }

    /// Evaluate a query under the given strategy.
    pub fn search(
        &mut self,
        terms: &[u32],
        n: usize,
        strategy: Strategy,
    ) -> Result<FragSearchReport> {
        self.search_gated(terms, n, strategy, &BoundGate::none())
    }

    /// [`FragSearcher::search`] with a cross-engine threshold hook: the
    /// bound-pruned score pass additionally skips documents whose upper
    /// bound falls strictly below the propagated global threshold, and
    /// every heap insertion publishes the local N-th score back through
    /// the gate (see [`crate::threshold`]).
    pub fn search_gated(
        &mut self,
        terms: &[u32],
        n: usize,
        strategy: Strategy,
        gate: &BoundGate,
    ) -> Result<FragSearchReport> {
        let index_vocab = self.frag.index().vocab_size();
        for &t in terms {
            if t as usize >= index_vocab {
                return Err(IrError::UnknownTerm(t));
            }
        }
        if terms.is_empty() {
            // Pinned behavior: the empty query touches nothing on every
            // engine path (no scan, no decision, empty top).
            return Ok(FragSearchReport::empty());
        }
        let qset: HashSet<u32> = terms.iter().copied().collect();

        // Distinct query terms in first-occurrence order; gathered postings
        // land in one doc-sorted bucket per distinct term (a term's run
        // lives entirely in one fragment and both gather paths visit it in
        // ascending document order).
        let mut distinct: Vec<u32> = Vec::new();
        for &t in terms {
            if !distinct.contains(&t) {
                distinct.push(t);
            }
        }
        let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); distinct.len()];
        let gather = |buckets: &mut Vec<Vec<(u32, u32)>>, t: u32, d: u32, f: u32| {
            let i = distinct
                .iter()
                .position(|&x| x == t)
                .expect("gathered posting belongs to a query term");
            buckets[i].push((d, f));
        };

        let frag = Arc::clone(&self.frag);
        let mut scanned = 0usize;
        let mut seeks = 0usize;
        let mut used_b = false;
        let mut decision = None;
        // The gathers poll the gate every SCAN_POLL_STRIDE inspected
        // entries: an expired deadline stops a pass mid-fragment instead
        // of at its end, bounding overshoot by the stride rather than the
        // fragment volume.
        let live = || !gate.expired();
        let mut gather_done;

        match strategy {
            Strategy::FullScan => {
                let (sa, a_done) = frag.fragment_a().postings_scan_while(
                    &qset,
                    |t, d, f| gather(&mut buckets, t, d, f),
                    live,
                );
                scanned = sa.scanned;
                gather_done = a_done;
                if a_done {
                    let (sb, b_done) = frag.fragment_b().postings_scan_while(
                        &qset,
                        |t, d, f| gather(&mut buckets, t, d, f),
                        live,
                    );
                    scanned += sb.scanned;
                    gather_done = b_done;
                }
                used_b = true;
            }
            Strategy::AOnly { use_a_index } => {
                let (sa, a_done) = if use_a_index {
                    frag.fragment_a().postings_indexed_while(
                        &qset,
                        |t, d, f| gather(&mut buckets, t, d, f),
                        live,
                    )?
                } else {
                    frag.fragment_a().postings_scan_while(
                        &qset,
                        |t, d, f| gather(&mut buckets, t, d, f),
                        live,
                    )
                };
                scanned = sa.scanned;
                seeks = sa.lookups;
                gather_done = a_done;
            }
            Strategy::Switch { use_b_index } => {
                // The early check runs before any scanning — it needs only
                // per-term statistics ("early in the query plan").
                let d = self.policy.decide(terms, &frag, self.kernel.model())?;
                let need_b = d.use_b;
                decision = Some(d);

                let (sa, a_done) = frag.fragment_a().postings_scan_while(
                    &qset,
                    |t, d2, f| gather(&mut buckets, t, d2, f),
                    live,
                );
                scanned += sa.scanned;
                gather_done = a_done;
                if need_b && a_done {
                    used_b = true;
                    let (sb, b_done) = if use_b_index {
                        frag.fragment_b().postings_indexed_while(
                            &qset,
                            |t, d2, f| gather(&mut buckets, t, d2, f),
                            live,
                        )?
                    } else {
                        frag.fragment_b().postings_scan_while(
                            &qset,
                            |t, d2, f| gather(&mut buckets, t, d2, f),
                            live,
                        )
                    };
                    scanned += sb.scanned;
                    seeks += sb.lookups;
                    gather_done = b_done;
                }
            }
        }

        // A truncated gather leaves partial buckets: nothing may be
        // ranked off them, so stop here with the work actually paid.
        if !gather_done {
            return Ok(FragSearchReport {
                top: Vec::new(),
                postings_scanned: scanned,
                postings_scored: 0,
                postings_pruned: 0,
                candidates: 0,
                bound_exits: 0,
                seeks,
                used_b,
                decision,
                timed_out: true,
            });
        }

        // Per-position scorers and bucket links.
        let index = frag.index();
        let m = terms.len();
        let mut scorers: Vec<TermScorer> = Vec::with_capacity(m);
        let mut bucket_of: Vec<usize> = Vec::with_capacity(m);
        for &t in terms {
            scorers.push(self.kernel.term_scorer(index.df(t)?, index.cf(t)?));
            bucket_of.push(
                distinct
                    .iter()
                    .position(|&x| x == t)
                    .expect("every position has a distinct-term bucket"),
            );
        }

        // The bound lookups below index the *index-built* block-max
        // tables by bucket position, which is sound only because a
        // gathered bucket is the term's full index run in order (a term's
        // postings live entirely in one fragment, and both gather paths
        // emit the run ascending). Pin that cross-module invariant in
        // debug builds before pruning on it.
        #[cfg(debug_assertions)]
        for (di, &t) in distinct.iter().enumerate() {
            let b = &buckets[di];
            debug_assert!(
                b.is_empty() || b.len() == index.run_len(t)?,
                "bucket for term {t} is a partial run ({} of {} postings)",
                b.len(),
                index.run_len(t)?
            );
            debug_assert!(
                b.windows(2).all(|w| w[0].0 < w[1].0),
                "bucket for term {t} is not in ascending document order"
            );
        }

        // Deadline poll at the gather/score boundary: the gathers above
        // are uninterruptible, but an overloaded worker stops here before
        // paying any scoring. Nothing entered the accumulator yet.
        if gate.expired() {
            return Ok(FragSearchReport {
                top: Vec::new(),
                postings_scanned: scanned,
                postings_scored: 0,
                postings_pruned: 0,
                candidates: 0,
                bound_exits: 0,
                seeks,
                used_b,
                decision,
                timed_out: true,
            });
        }

        // Fast path: when the heap can admit every matching document, the
        // bound machinery cannot prune anything — accumulate exact scores
        // directly (position by position: the canonical addition order)
        // and skip the table build, the bound pass, and the sort.
        let matched_total: usize = buckets.iter().map(Vec::len).sum();
        if n >= matched_total.min(index.num_docs()) {
            let mut scored = 0usize;
            let mut timed_out = false;
            'accumulate: for (p, &bi) in bucket_of.iter().enumerate() {
                // Poll per position run and every SCAN_POLL_STRIDE
                // accumulated postings within a run: a document's sum is
                // exact only once every position has contributed, so on
                // expiry the partial sums are discarded, never ranked.
                for (k, &(doc, tf)) in buckets[bi].iter().enumerate() {
                    if k % SCAN_POLL_STRIDE == 0 && gate.expired() {
                        timed_out = true;
                        break 'accumulate;
                    }
                    self.ub_accum
                        .add(doc, self.kernel.weight(&scorers[p], tf, doc));
                    scored += 1;
                }
            }
            let mut heap = TopNHeap::new(n);
            if !timed_out {
                for &doc in self.ub_accum.touched() {
                    heap.push(doc, self.ub_accum.score(doc));
                }
                // Even the unpruned path publishes its N-th score: other
                // shards' gates tighten off it.
                gate.publish(&heap);
            }
            let candidates = heap.pushes();
            self.ub_accum.retire();
            return Ok(FragSearchReport {
                top: heap.into_sorted_vec(),
                postings_scanned: scanned,
                postings_scored: scored,
                postings_pruned: 0,
                candidates,
                bound_exits: 0,
                seeks,
                used_b,
                decision,
                timed_out,
            });
        }

        // The shared block-max bound tables — the same [`ScoreBounds`]
        // the pruned DAAT kernel runs on, built lazily once per
        // `(index, model)` and shared across engine paths. Bucket
        // position i sits in storage block i / BLOCK_POSTINGS (the
        // invariant asserted above), so that block's exact maximum
        // bounds the posting's weight.
        let kernel = Arc::clone(&self.kernel);
        let bound_tables = Arc::clone(&self.bound_tables);
        let tables = bound_tables.get_or_init(|| ScoreBounds::new(&kernel, index));

        // Bound pass: accumulate each touched document's score upper bound
        // position by position from the quantized mini-block maxima (8
        // nibbles per 128-posting `BlockBound`, colocated with the block
        // headers). Bucket position i sits in storage block
        // i / BLOCK_POSTINGS at offset i % BLOCK_POSTINGS, so its 16-entry
        // mini-block's round-up-quantized maximum bounds the posting's
        // weight — a strictly tighter sum than the whole-block maxima,
        // still a sound upper bound per posting. The sequential
        // accumulation mirrors the exact canonical sum's addition order,
        // and floating-point rounding is monotone, so `bound >= exact
        // score` holds slot for slot. Polled per stride like the exact
        // accumulator: on expiry nothing has been ranked yet.
        let mut timed_out = false;
        'bound: for &bi in bucket_of.iter() {
            let block_bounds = tables.term_blocks(distinct[bi]);
            for (i, &(doc, _)) in buckets[bi].iter().enumerate() {
                if i % SCAN_POLL_STRIDE == 0 && gate.expired() {
                    timed_out = true;
                    break 'bound;
                }
                self.ub_accum.add(
                    doc,
                    block_bounds[i / ScoreBounds::BLOCK_POSTINGS]
                        .mini_bound(i % ScoreBounds::BLOCK_POSTINGS),
                );
            }
        }
        if timed_out {
            self.ub_accum.retire();
            return Ok(FragSearchReport {
                top: Vec::new(),
                postings_scanned: scanned,
                postings_scored: 0,
                postings_pruned: 0,
                candidates: 0,
                bound_exits: 0,
                seeks,
                used_b,
                decision,
                timed_out: true,
            });
        }
        let mut docs: Vec<(u32, f64)> = self
            .ub_accum
            .touched()
            .iter()
            .map(|&d| (d, self.ub_accum.score(d)))
            .collect();
        // Highest bound first (ties by ascending doc id): the heap
        // threshold tightens as fast as possible, maximizing skips.
        docs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

        // Score pass: only documents whose bound would still enter the
        // heap are scored — exactly, in original query-position order.
        let mut heap = TopNHeap::new(n);
        let mut scored = 0usize;
        let mut candidates = 0usize;
        let mut bound_exits = 0usize;
        for &(doc, ub) in &docs {
            // Deadline poll per candidate: each heap entry is a fully,
            // exactly scored document, so truncation here leaves an
            // honest partial top-N.
            if gate.expired() {
                timed_out = true;
                break;
            }
            if !(heap.would_enter(ub, doc) && gate.admits(ub)) {
                bound_exits += 1;
                continue;
            }
            candidates += 1;
            let mut score = 0.0f64;
            for (p, &bi) in bucket_of.iter().enumerate() {
                let bucket = &buckets[bi];
                if let Ok(i) = bucket.binary_search_by_key(&doc, |&(d, _)| d) {
                    score += self.kernel.weight(&scorers[p], bucket[i].1, doc);
                    scored += 1;
                }
            }
            heap.push(doc, score);
            gate.publish(&heap);
        }
        self.ub_accum.retire();
        // Every (position, membership) probe belongs to exactly one
        // document — scored if it survived, bypassed otherwise — so the
        // pruned count is the probe volume minus the scored probes.
        let probe_total: usize = bucket_of.iter().map(|&bi| buckets[bi].len()).sum();

        Ok(FragSearchReport {
            top: heap.into_sorted_vec(),
            postings_scanned: scanned,
            postings_scored: scored,
            postings_pruned: probe_total - scored,
            candidates,
            bound_exits,
            seeks,
            used_b,
            decision,
            timed_out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Searcher;
    use moa_corpus::{Collection, CollectionConfig};

    fn frag(spec: FragmentSpec) -> Arc<FragmentedIndex> {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        Arc::new(FragmentedIndex::build(idx, spec).unwrap())
    }

    #[test]
    fn fragments_partition_the_volume() {
        let f = frag(FragmentSpec::VolumeFraction(0.2));
        let total = f.index().num_postings();
        assert_eq!(f.fragment_a().volume() + f.fragment_b().volume(), total);
        assert!(f.volume_fraction_a() <= 0.2 + 0.05);
        assert!(f.volume_fraction_a() > 0.0);
    }

    #[test]
    fn fragment_a_holds_rarest_terms() {
        let f = frag(FragmentSpec::TermFraction(0.5));
        let boundary = f.df_boundary();
        for t in 0..f.index().vocab_size() as u32 {
            let df = f.index().df(t).unwrap();
            if df == 0 {
                continue;
            }
            if f.term_in_a(t) {
                assert!(df <= boundary);
            } else {
                // B terms are at least as frequent as the boundary
                // (ties may fall either side).
                assert!(df >= boundary.min(df));
            }
        }
    }

    #[test]
    fn df_threshold_spec() {
        let f = frag(FragmentSpec::DfThreshold(3));
        for t in 0..f.index().vocab_size() as u32 {
            let df = f.index().df(t).unwrap();
            if df == 0 {
                continue;
            }
            assert_eq!(f.term_in_a(t), df <= 3, "term {t} df {df}");
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        assert!(
            FragmentedIndex::build(Arc::clone(&idx), FragmentSpec::VolumeFraction(0.0)).is_err()
        );
        assert!(
            FragmentedIndex::build(Arc::clone(&idx), FragmentSpec::VolumeFraction(1.5)).is_err()
        );
        assert!(FragmentedIndex::build(idx, FragmentSpec::TermFraction(-0.1)).is_err());
    }

    #[test]
    fn full_scan_equals_unfragmented_search() {
        let f = frag(FragmentSpec::VolumeFraction(0.3));
        let model = RankingModel::default();
        let mut fs = FragSearcher::new(Arc::clone(&f), model, SwitchPolicy::default());
        let mut reference = Searcher::new(f.index(), model);
        let terms = f.index().terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() / 2]];
        let got = fs.search(&q, 10, Strategy::FullScan).unwrap();
        let want = reference.search(&q, 10).unwrap();
        assert_eq!(got.top, want.top);
        // Full scan inspects the entire volume.
        assert_eq!(got.postings_scanned, f.index().num_postings());
    }

    #[test]
    fn a_only_scans_only_fragment_a() {
        let f = frag(FragmentSpec::VolumeFraction(0.3));
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let terms = f.index().terms_by_df_asc();
        let q = vec![terms[0], terms[terms.len() - 1]];
        let rep = fs
            .search(&q, 10, Strategy::AOnly { use_a_index: false })
            .unwrap();
        assert_eq!(rep.postings_scanned, f.fragment_a().volume());
        assert!(!rep.used_b);
    }

    #[test]
    fn a_index_reduces_a_only_scanned_volume() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        let mut f = FragmentedIndex::build(idx, FragmentSpec::TermFraction(0.9)).unwrap();
        f.fragment_a_mut().build_sparse_index(64).unwrap();
        let f = Arc::new(f);
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let terms = f.index().terms_by_df_asc();
        let q = vec![terms[0], terms[1]];
        let indexed = fs
            .search(&q, 10, Strategy::AOnly { use_a_index: true })
            .unwrap();
        let scanned = fs
            .search(&q, 10, Strategy::AOnly { use_a_index: false })
            .unwrap();
        assert_eq!(indexed.top, scanned.top);
        assert!(indexed.seeks > 0);
        assert!(
            indexed.postings_scanned < scanned.postings_scanned,
            "indexed {} >= scanned {}",
            indexed.postings_scanned,
            scanned.postings_scanned
        );
    }

    #[test]
    fn duplicate_query_terms_accumulate_twice_like_the_saat_engine() {
        let f = frag(FragmentSpec::VolumeFraction(0.3));
        let model = RankingModel::default();
        let mut fs = FragSearcher::new(Arc::clone(&f), model, SwitchPolicy::default());
        let mut reference = Searcher::new(f.index(), model);
        let terms = f.index().terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 1], terms[0]];
        let got = fs.search(&q, 10, Strategy::FullScan).unwrap();
        let want = reference.search(&q, 10).unwrap();
        assert_eq!(got.top, want.top, "duplicated term must contribute twice");
    }

    #[test]
    fn empty_query_touches_nothing_under_every_strategy() {
        let f = frag(FragmentSpec::VolumeFraction(0.3));
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        for strategy in [
            Strategy::FullScan,
            Strategy::AOnly { use_a_index: false },
            Strategy::AOnly { use_a_index: true },
            Strategy::Switch { use_b_index: false },
            Strategy::Switch { use_b_index: true },
        ] {
            let rep = fs.search(&[], 10, strategy).unwrap();
            assert!(rep.top.is_empty());
            assert_eq!(rep.postings_scanned, 0, "{strategy:?}");
            assert_eq!(rep.postings_scored, 0);
            assert!(!rep.used_b);
            assert!(rep.decision.is_none());
        }
    }

    #[test]
    fn bound_pruning_skips_probes_without_changing_the_topn() {
        let f = frag(FragmentSpec::VolumeFraction(0.3));
        let model = RankingModel::default();
        let mut fs = FragSearcher::new(Arc::clone(&f), model, SwitchPolicy::default());
        let terms = f.index().terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 2], terms[0]];
        // Small n: most touched documents cannot enter, so their probes
        // are skipped on the upper bound.
        let small = fs.search(&q, 3, Strategy::FullScan).unwrap();
        assert!(small.bound_exits > 0, "no document was pruned");
        assert!(small.postings_pruned > 0);
        // Large n admits everything: nothing may be pruned, and the small
        // top-N must be a prefix of the large one.
        let large = fs
            .search(&q, f.index().num_docs(), Strategy::FullScan)
            .unwrap();
        assert_eq!(large.bound_exits, 0);
        assert_eq!(large.postings_pruned, 0);
        assert_eq!(&large.top[..small.top.len()], &small.top[..]);
        // The probe ledger balances: scored + pruned probes equal the
        // unpruned probe volume.
        assert_eq!(
            small.postings_scored + small.postings_pruned,
            large.postings_scored
        );
    }

    #[test]
    fn switch_consults_b_for_frequent_queries() {
        let f = frag(FragmentSpec::VolumeFraction(0.2));
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let terms = f.index().terms_by_df_asc();
        // All-frequent query: the check must demand fragment B.
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 2]];
        let rep = fs
            .search(&q, 10, Strategy::Switch { use_b_index: false })
            .unwrap();
        assert!(rep.used_b);
        assert!(rep.decision.unwrap().use_b);
        // And its results match the full scan.
        let full = fs.search(&q, 10, Strategy::FullScan).unwrap();
        assert_eq!(rep.top, full.top);
    }

    #[test]
    fn switch_skips_b_for_rare_queries() {
        let f = frag(FragmentSpec::TermFraction(0.9));
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let terms = f.index().terms_by_df_asc();
        let q = vec![terms[0], terms[1]]; // rarest observed terms
        let rep = fs
            .search(&q, 10, Strategy::Switch { use_b_index: false })
            .unwrap();
        assert!(!rep.used_b);
        assert_eq!(rep.postings_scanned, f.fragment_a().volume());
    }

    #[test]
    fn b_index_reduces_scanned_volume() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        let mut f = FragmentedIndex::build(idx, FragmentSpec::VolumeFraction(0.2)).unwrap();
        f.fragment_b_mut().build_sparse_index(64).unwrap();
        let f = Arc::new(f);
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let terms = f.index().terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 2]];
        let indexed = fs
            .search(&q, 10, Strategy::Switch { use_b_index: true })
            .unwrap();
        let scanned = fs
            .search(&q, 10, Strategy::Switch { use_b_index: false })
            .unwrap();
        assert_eq!(indexed.top, scanned.top);
        assert!(
            indexed.postings_scanned < scanned.postings_scanned,
            "indexed {} >= scanned {}",
            indexed.postings_scanned,
            scanned.postings_scanned
        );
    }

    #[test]
    fn indexed_lookup_matches_scan_lookup() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        let mut table = TdTable::from_index(&idx, |_| true);
        table.build_sparse_index(32).unwrap();
        let terms = idx.terms_by_df_asc();
        let qset: HashSet<u32> = [terms[0], terms[terms.len() - 1]].into_iter().collect();
        let mut via_scan = Vec::new();
        let _ = table.postings_scan(&qset, |t, d, f| via_scan.push((t, d, f)));
        let mut via_index = Vec::new();
        let _ = table
            .postings_indexed(&qset, |t, d, f| via_index.push((t, d, f)))
            .unwrap();
        via_scan.sort_unstable();
        via_index.sort_unstable();
        assert_eq!(via_scan, via_index);
    }

    #[test]
    fn unknown_query_term_is_error() {
        let f = frag(FragmentSpec::VolumeFraction(0.5));
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        assert!(fs.search(&[u32::MAX], 5, Strategy::FullScan).is_err());
    }

    #[test]
    fn term_fraction_reports_fraction() {
        let f = frag(FragmentSpec::TermFraction(0.75));
        let tf = f.term_fraction_a();
        assert!((tf - 0.75).abs() < 0.02, "term fraction {tf}");
    }
}
