//! Horizontal fragmentation of the term–document matrix (the paper's Step 1).
//!
//! In the flattened Moa/MonetDB execution model, the term–document matrix is
//! a BAT of `(term, doc, tf)` triples and a query's posting retrieval is a
//! *set-at-a-time selection over that table* — work proportional to the
//! table's volume, not to the query's result. Fragmenting the table by
//! document frequency therefore directly cuts query time:
//!
//! * **Fragment A** — the "most interesting" (lowest-df, highest-idf) terms;
//!   a small share of the volume. Evaluating only A is the paper's *unsafe*
//!   technique: fast, but quality drops when query terms live in B.
//! * **Fragment B** — the frequent rest, the bulk of the volume. The *safe*
//!   variant consults an early quality check ([`crate::safety`]) and
//!   *switches in* fragment B when needed — either by scanning B or through
//!   a **non-dense index** ([`moa_storage::SparseIndex`]) over B's sorted
//!   term column, the acceleration the paper proposes.

use std::collections::HashSet;
use std::sync::Arc;

use moa_storage::{Bat, Column, Scalar, SparseIndex};
use moa_topn::TopNHeap;

use crate::accum::EpochAccumulator;
use crate::error::{IrError, Result};
use crate::index::InvertedIndex;
use crate::ranking::RankingModel;
use crate::safety::{SwitchDecision, SwitchPolicy};
use crate::scorer::{ScoreKernel, TermScorer};

/// How the fragment boundary is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FragmentSpec {
    /// Fragment A holds the rarest terms whose cumulative posting volume
    /// stays below this fraction of the total (0, 1].
    VolumeFraction(f64),
    /// Fragment A holds this fraction of the observed terms, rarest first
    /// (the paper's "95% most interesting terms" phrasing).
    TermFraction(f64),
    /// Fragment A holds every term with `df <=` this threshold.
    DfThreshold(u32),
}

/// A flat `(term, doc, tf)` table sorted by term — the BAT realization of
/// one fragment, with an optional non-dense index on the term column.
#[derive(Debug, Clone)]
pub struct TdTable {
    terms: Vec<u32>,
    docs: Vec<u32>,
    tfs: Vec<u32>,
    /// Sorted term column as a BAT (for sparse-index lookups).
    term_bat: Bat,
    sparse: Option<SparseIndex>,
}

/// Scan statistics of one posting-retrieval pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Table entries inspected.
    pub scanned: usize,
    /// Entries matching the query terms (and therefore scored).
    pub matched: usize,
}

impl TdTable {
    /// Build a fragment table holding the postings of the selected terms.
    pub fn from_index(index: &InvertedIndex, keep: impl Fn(u32) -> bool) -> TdTable {
        let mut terms = Vec::new();
        let mut docs = Vec::new();
        let mut tfs = Vec::new();
        for term in 0..index.vocab_size() as u32 {
            if !keep(term) {
                continue;
            }
            let (d, t) = index.postings(term).expect("term id in range");
            for (i, &doc) in d.iter().enumerate() {
                terms.push(term);
                docs.push(doc);
                tfs.push(t[i]);
            }
        }
        let term_bat = Bat::dense(Column::from(terms.clone()));
        TdTable {
            terms,
            docs,
            tfs,
            term_bat,
            sparse: None,
        }
    }

    /// Number of `(term, doc, tf)` entries (the fragment's volume).
    pub fn volume(&self) -> usize {
        self.terms.len()
    }

    /// Whether a sparse (non-dense) index has been built.
    pub fn has_sparse_index(&self) -> bool {
        self.sparse.is_some()
    }

    /// Build the non-dense index on the sorted term column with the given
    /// block size.
    pub fn build_sparse_index(&mut self, block_size: usize) -> Result<()> {
        self.sparse = Some(SparseIndex::build(&self.term_bat, block_size)?);
        Ok(())
    }

    /// Retrieve the postings of `query_terms` by scanning the whole table
    /// (the un-indexed BAT selection): cost = volume.
    pub fn postings_scan(
        &self,
        query_terms: &HashSet<u32>,
        mut on_posting: impl FnMut(u32, u32, u32),
    ) -> ScanStats {
        let mut stats = ScanStats {
            scanned: self.terms.len(),
            matched: 0,
        };
        for i in 0..self.terms.len() {
            if query_terms.contains(&self.terms[i]) {
                stats.matched += 1;
                on_posting(self.terms[i], self.docs[i], self.tfs[i]);
            }
        }
        stats
    }

    /// Retrieve the postings of `query_terms` through the non-dense index:
    /// cost = the covering blocks of each term's run. Falls back to a full
    /// scan when no index has been built.
    pub fn postings_indexed(
        &self,
        query_terms: &HashSet<u32>,
        mut on_posting: impl FnMut(u32, u32, u32),
    ) -> Result<ScanStats> {
        let Some(sparse) = &self.sparse else {
            return Ok(self.postings_scan(query_terms, on_posting));
        };
        let mut stats = ScanStats::default();
        let mut sorted_terms: Vec<u32> = query_terms.iter().copied().collect();
        sorted_terms.sort_unstable();
        for term in sorted_terms {
            let range = sparse.lookup_range(&Scalar::U32(term), &Scalar::U32(term))?;
            for i in range.start..range.end {
                stats.scanned += 1;
                if self.terms[i] == term {
                    stats.matched += 1;
                    on_posting(term, self.docs[i], self.tfs[i]);
                }
            }
        }
        Ok(stats)
    }
}

/// The fragmented term–document matrix plus shared collection statistics.
#[derive(Debug, Clone)]
pub struct FragmentedIndex {
    index: Arc<InvertedIndex>,
    spec: FragmentSpec,
    in_a: Vec<bool>,
    /// Largest df found in fragment A (boundary documentation).
    df_boundary: u32,
    a: TdTable,
    b: TdTable,
}

impl FragmentedIndex {
    /// Fragment an index according to `spec`.
    pub fn build(index: Arc<InvertedIndex>, spec: FragmentSpec) -> Result<FragmentedIndex> {
        let mut in_a = vec![false; index.vocab_size()];
        let by_df = index.terms_by_df_asc();
        let observed = by_df.len();
        let total_volume: usize = index.num_postings();
        if observed == 0 || total_volume == 0 {
            return Err(IrError::InvalidConfig(
                "cannot fragment an empty index".into(),
            ));
        }
        let mut df_boundary = 0u32;
        match spec {
            FragmentSpec::VolumeFraction(f) => {
                if !(0.0 < f && f <= 1.0) {
                    return Err(IrError::InvalidConfig(format!(
                        "volume fraction {f} outside (0, 1]"
                    )));
                }
                let budget = (f * total_volume as f64) as usize;
                let mut acc = 0usize;
                for &t in &by_df {
                    let run = index.df(t)? as usize;
                    if acc + run > budget && acc > 0 {
                        break;
                    }
                    acc += run;
                    in_a[t as usize] = true;
                    df_boundary = df_boundary.max(index.df(t)?);
                }
            }
            FragmentSpec::TermFraction(f) => {
                if !(0.0 < f && f <= 1.0) {
                    return Err(IrError::InvalidConfig(format!(
                        "term fraction {f} outside (0, 1]"
                    )));
                }
                let count = ((f * observed as f64).round() as usize).clamp(1, observed);
                for &t in by_df.iter().take(count) {
                    in_a[t as usize] = true;
                    df_boundary = df_boundary.max(index.df(t)?);
                }
            }
            FragmentSpec::DfThreshold(th) => {
                for &t in &by_df {
                    if index.df(t)? <= th {
                        in_a[t as usize] = true;
                        df_boundary = df_boundary.max(index.df(t)?);
                    }
                }
            }
        }
        let a = TdTable::from_index(&index, |t| in_a[t as usize]);
        let b = TdTable::from_index(&index, |t| {
            !in_a[t as usize] && index.df(t).map(|d| d > 0).unwrap_or(false)
        });
        Ok(FragmentedIndex {
            index,
            spec,
            in_a,
            df_boundary,
            a,
            b,
        })
    }

    /// The fragmentation specification used.
    pub fn spec(&self) -> FragmentSpec {
        self.spec
    }

    /// The underlying unfragmented index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Whether a term belongs to fragment A.
    pub fn term_in_a(&self, term: u32) -> bool {
        self.in_a.get(term as usize).copied().unwrap_or(false)
    }

    /// Largest document frequency of any fragment-A term.
    pub fn df_boundary(&self) -> u32 {
        self.df_boundary
    }

    /// Fragment A (interesting terms).
    pub fn fragment_a(&self) -> &TdTable {
        &self.a
    }

    /// Fragment B (frequent terms).
    pub fn fragment_b(&self) -> &TdTable {
        &self.b
    }

    /// Mutable fragment B, e.g. to build its non-dense index.
    pub fn fragment_b_mut(&mut self) -> &mut TdTable {
        &mut self.b
    }

    /// A's share of the total posting volume.
    pub fn volume_fraction_a(&self) -> f64 {
        let total = (self.a.volume() + self.b.volume()).max(1);
        self.a.volume() as f64 / total as f64
    }

    /// A's share of the observed terms.
    pub fn term_fraction_a(&self) -> f64 {
        let in_a = self
            .in_a
            .iter()
            .enumerate()
            .filter(|&(t, &ia)| ia && self.index.df(t as u32).map(|d| d > 0).unwrap_or(false))
            .count();
        let observed = self.index.terms_by_df_asc().len().max(1);
        in_a as f64 / observed as f64
    }
}

/// Query evaluation strategy over a fragmented index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The unoptimized baseline: scan the full (A + B) volume.
    FullScan,
    /// The unsafe technique: scan (and score) fragment A only.
    AOnly,
    /// The safe technique: scan A, consult the early quality check, and
    /// switch in fragment B when needed.
    Switch {
        /// Access B through its non-dense index instead of scanning it.
        use_b_index: bool,
    },
}

/// Report of a fragmented query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct FragSearchReport {
    /// Top `(doc, score)` pairs, best first.
    pub top: Vec<(u32, f64)>,
    /// Total table entries inspected across fragments.
    pub postings_scanned: usize,
    /// Entries that matched query terms and were scored.
    pub postings_scored: usize,
    /// Whether fragment B was consulted.
    pub used_b: bool,
    /// The safety decision, when the strategy made one.
    pub decision: Option<SwitchDecision>,
}

/// A reusable evaluator over a fragmented index. Scoring goes through the
/// shared [`ScoreKernel`] (precomputed per-term constants and cached
/// per-document norms), and the sparse accumulator uses an epoch marker —
/// the same query kernel as [`crate::eval::Searcher`] and
/// [`crate::daat::DaatSearcher`].
#[derive(Debug)]
pub struct FragSearcher {
    frag: Arc<FragmentedIndex>,
    kernel: ScoreKernel,
    policy: SwitchPolicy,
    accum: EpochAccumulator,
}

impl FragSearcher {
    /// Create an evaluator with a ranking model and switch policy.
    pub fn new(
        frag: Arc<FragmentedIndex>,
        model: RankingModel,
        policy: SwitchPolicy,
    ) -> FragSearcher {
        let n = frag.index().num_docs();
        let kernel = ScoreKernel::new(model, frag.index());
        FragSearcher {
            frag,
            kernel,
            policy,
            accum: EpochAccumulator::new(n),
        }
    }

    /// Precompute one scorer per query term. Queries hold a handful of
    /// terms, so the per-posting lookup in [`FragSearcher::accumulate`]
    /// is a linear scan over this small list — no hashing in the hot
    /// loop.
    fn term_scorers(&self, terms: &[u32]) -> Vec<(u32, TermScorer)> {
        let index = self.frag.index();
        terms
            .iter()
            .map(|&t| {
                (
                    t,
                    self.kernel
                        .term_scorer(index.df(t).unwrap_or(0), index.cf(t).unwrap_or(0)),
                )
            })
            .collect()
    }

    fn accumulate(&mut self, scorers: &[(u32, TermScorer)], term: u32, doc: u32, tf: u32) {
        let scorer = scorers
            .iter()
            .find_map(|(t, s)| (*t == term).then_some(s))
            .expect("scorer prebuilt per query term");
        let w = self.kernel.weight(scorer, tf, doc);
        self.accum.add(doc, w);
    }

    /// Evaluate a query under the given strategy.
    pub fn search(
        &mut self,
        terms: &[u32],
        n: usize,
        strategy: Strategy,
    ) -> Result<FragSearchReport> {
        for &t in terms {
            if t as usize >= self.frag.index().vocab_size() {
                return Err(IrError::UnknownTerm(t));
            }
        }
        let qset: HashSet<u32> = terms.iter().copied().collect();
        let scorers = self.term_scorers(terms);
        let mut scanned = 0usize;
        let mut scored = 0usize;
        let mut used_b = false;
        let mut decision = None;

        // Borrow-splitting closure workaround: accumulate via raw parts.
        let frag = Arc::clone(&self.frag);

        match strategy {
            Strategy::FullScan => {
                let mut acc: Vec<(u32, u32, u32)> = Vec::new();
                let sa = frag.fragment_a().postings_scan(&qset, |t, d, f| {
                    acc.push((t, d, f));
                });
                let sb = frag.fragment_b().postings_scan(&qset, |t, d, f| {
                    acc.push((t, d, f));
                });
                scanned = sa.scanned + sb.scanned;
                scored = sa.matched + sb.matched;
                used_b = true;
                for (t, d, f) in acc {
                    self.accumulate(&scorers, t, d, f);
                }
            }
            Strategy::AOnly => {
                let mut acc: Vec<(u32, u32, u32)> = Vec::new();
                let sa = frag.fragment_a().postings_scan(&qset, |t, d, f| {
                    acc.push((t, d, f));
                });
                scanned = sa.scanned;
                scored = sa.matched;
                for (t, d, f) in acc {
                    self.accumulate(&scorers, t, d, f);
                }
            }
            Strategy::Switch { use_b_index } => {
                // The early check runs before any scanning — it needs only
                // per-term statistics ("early in the query plan").
                let d = self.policy.decide(terms, &frag, self.kernel.model())?;
                let need_b = d.use_b;
                decision = Some(d);

                let mut acc: Vec<(u32, u32, u32)> = Vec::new();
                let sa = frag.fragment_a().postings_scan(&qset, |t, d2, f| {
                    acc.push((t, d2, f));
                });
                scanned += sa.scanned;
                scored += sa.matched;
                if need_b {
                    used_b = true;
                    let sb = if use_b_index {
                        frag.fragment_b().postings_indexed(&qset, |t, d2, f| {
                            acc.push((t, d2, f));
                        })?
                    } else {
                        frag.fragment_b().postings_scan(&qset, |t, d2, f| {
                            acc.push((t, d2, f));
                        })
                    };
                    scanned += sb.scanned;
                    scored += sb.matched;
                }
                for (t, d2, f) in acc {
                    self.accumulate(&scorers, t, d2, f);
                }
            }
        }

        let mut heap = TopNHeap::new(n);
        for &doc in self.accum.touched() {
            heap.push(doc, self.accum.score(doc));
        }
        self.accum.retire();

        Ok(FragSearchReport {
            top: heap.into_sorted_vec(),
            postings_scanned: scanned,
            postings_scored: scored,
            used_b,
            decision,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Searcher;
    use moa_corpus::{Collection, CollectionConfig};

    fn frag(spec: FragmentSpec) -> Arc<FragmentedIndex> {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        Arc::new(FragmentedIndex::build(idx, spec).unwrap())
    }

    #[test]
    fn fragments_partition_the_volume() {
        let f = frag(FragmentSpec::VolumeFraction(0.2));
        let total = f.index().num_postings();
        assert_eq!(f.fragment_a().volume() + f.fragment_b().volume(), total);
        assert!(f.volume_fraction_a() <= 0.2 + 0.05);
        assert!(f.volume_fraction_a() > 0.0);
    }

    #[test]
    fn fragment_a_holds_rarest_terms() {
        let f = frag(FragmentSpec::TermFraction(0.5));
        let boundary = f.df_boundary();
        for t in 0..f.index().vocab_size() as u32 {
            let df = f.index().df(t).unwrap();
            if df == 0 {
                continue;
            }
            if f.term_in_a(t) {
                assert!(df <= boundary);
            } else {
                // B terms are at least as frequent as the boundary
                // (ties may fall either side).
                assert!(df >= boundary.min(df));
            }
        }
    }

    #[test]
    fn df_threshold_spec() {
        let f = frag(FragmentSpec::DfThreshold(3));
        for t in 0..f.index().vocab_size() as u32 {
            let df = f.index().df(t).unwrap();
            if df == 0 {
                continue;
            }
            assert_eq!(f.term_in_a(t), df <= 3, "term {t} df {df}");
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        assert!(
            FragmentedIndex::build(Arc::clone(&idx), FragmentSpec::VolumeFraction(0.0)).is_err()
        );
        assert!(
            FragmentedIndex::build(Arc::clone(&idx), FragmentSpec::VolumeFraction(1.5)).is_err()
        );
        assert!(FragmentedIndex::build(idx, FragmentSpec::TermFraction(-0.1)).is_err());
    }

    #[test]
    fn full_scan_equals_unfragmented_search() {
        let f = frag(FragmentSpec::VolumeFraction(0.3));
        let model = RankingModel::default();
        let mut fs = FragSearcher::new(Arc::clone(&f), model, SwitchPolicy::default());
        let mut reference = Searcher::new(f.index(), model);
        let terms = f.index().terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() / 2]];
        let got = fs.search(&q, 10, Strategy::FullScan).unwrap();
        let want = reference.search(&q, 10).unwrap();
        assert_eq!(got.top, want.top);
        // Full scan inspects the entire volume.
        assert_eq!(got.postings_scanned, f.index().num_postings());
    }

    #[test]
    fn a_only_scans_only_fragment_a() {
        let f = frag(FragmentSpec::VolumeFraction(0.3));
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let terms = f.index().terms_by_df_asc();
        let q = vec![terms[0], terms[terms.len() - 1]];
        let rep = fs.search(&q, 10, Strategy::AOnly).unwrap();
        assert_eq!(rep.postings_scanned, f.fragment_a().volume());
        assert!(!rep.used_b);
    }

    #[test]
    fn switch_consults_b_for_frequent_queries() {
        let f = frag(FragmentSpec::VolumeFraction(0.2));
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let terms = f.index().terms_by_df_asc();
        // All-frequent query: the check must demand fragment B.
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 2]];
        let rep = fs
            .search(&q, 10, Strategy::Switch { use_b_index: false })
            .unwrap();
        assert!(rep.used_b);
        assert!(rep.decision.unwrap().use_b);
        // And its results match the full scan.
        let full = fs.search(&q, 10, Strategy::FullScan).unwrap();
        assert_eq!(rep.top, full.top);
    }

    #[test]
    fn switch_skips_b_for_rare_queries() {
        let f = frag(FragmentSpec::TermFraction(0.9));
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let terms = f.index().terms_by_df_asc();
        let q = vec![terms[0], terms[1]]; // rarest observed terms
        let rep = fs
            .search(&q, 10, Strategy::Switch { use_b_index: false })
            .unwrap();
        assert!(!rep.used_b);
        assert_eq!(rep.postings_scanned, f.fragment_a().volume());
    }

    #[test]
    fn b_index_reduces_scanned_volume() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        let mut f = FragmentedIndex::build(idx, FragmentSpec::VolumeFraction(0.2)).unwrap();
        f.fragment_b_mut().build_sparse_index(64).unwrap();
        let f = Arc::new(f);
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let terms = f.index().terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 2]];
        let indexed = fs
            .search(&q, 10, Strategy::Switch { use_b_index: true })
            .unwrap();
        let scanned = fs
            .search(&q, 10, Strategy::Switch { use_b_index: false })
            .unwrap();
        assert_eq!(indexed.top, scanned.top);
        assert!(
            indexed.postings_scanned < scanned.postings_scanned,
            "indexed {} >= scanned {}",
            indexed.postings_scanned,
            scanned.postings_scanned
        );
    }

    #[test]
    fn indexed_lookup_matches_scan_lookup() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        let mut table = TdTable::from_index(&idx, |_| true);
        table.build_sparse_index(32).unwrap();
        let terms = idx.terms_by_df_asc();
        let qset: HashSet<u32> = [terms[0], terms[terms.len() - 1]].into_iter().collect();
        let mut via_scan = Vec::new();
        table.postings_scan(&qset, |t, d, f| via_scan.push((t, d, f)));
        let mut via_index = Vec::new();
        table
            .postings_indexed(&qset, |t, d, f| via_index.push((t, d, f)))
            .unwrap();
        via_scan.sort_unstable();
        via_index.sort_unstable();
        assert_eq!(via_scan, via_index);
    }

    #[test]
    fn unknown_query_term_is_error() {
        let f = frag(FragmentSpec::VolumeFraction(0.5));
        let mut fs = FragSearcher::new(
            Arc::clone(&f),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        assert!(fs.search(&[u32::MAX], 5, Strategy::FullScan).is_err());
    }

    #[test]
    fn term_fraction_reports_fraction() {
        let f = frag(FragmentSpec::TermFraction(0.75));
        let tf = f.term_fraction_a();
        assert!((tf - 0.75).abs() < 0.02, "term fraction {tf}");
    }
}
