//! The physical retrieval layer: one operator interface over all four
//! engine paths.
//!
//! The paper's Step 3 asks for a *centralized* cost model that picks the
//! execution strategy. That is only possible when the strategies are
//! interchangeable behind one interface — before this layer, the
//! MaxScore-pruned DAAT kernel, the exhaustive cursor merge, the
//! set-at-a-time [`Searcher`], and the fragmented [`FragSearcher`] lived
//! behind four incompatible APIs and were chosen by hand per experiment.
//!
//! * [`PhysicalPlan`] names every physical alternative (the Cascades-style
//!   physical side of the logical `rank` operator),
//! * [`RetrievalOp`] is the uniform executable operator: every engine path
//!   implements it and yields an [`ExecReport`] with unified work counters,
//! * [`EngineSet`] owns the shared per-index state (one [`ScoreKernel`],
//!   one lazily built [`ScoreBounds`], one accumulator, one
//!   [`FragSearcher`]) and executes whichever plan the
//!   `moa_core::planner` — or a caller directly — selects.
//!
//! Every *exact* plan returns a top-N that is bit-identical to the naive
//! full-scan oracle: all paths score through the same kernel and sum
//! per-document contributions in original query-position order.

use std::sync::{Arc, OnceLock};

use crate::accum::EpochAccumulator;
use crate::daat::{DaatReport, DaatSearcher, DaatStats};
use crate::error::Result;
use crate::eval::{SearchReport, Searcher};
use crate::fragment::{FragSearchReport, FragSearcher, FragmentedIndex, Strategy};
use crate::ranking::RankingModel;
use crate::safety::SwitchPolicy;
use crate::scorer::{ScoreBounds, ScoreKernel};
use crate::scratch::QueryScratch;
use crate::threshold::BoundGate;

/// A physical retrieval alternative — the plan enumeration space of the
/// cost-driven planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysicalPlan {
    /// MaxScore + block-max pruned document-at-a-time evaluation.
    PrunedDaat,
    /// The plain exhaustive cursor merge.
    ExhaustiveDaat,
    /// Set-at-a-time accumulation over the element-addressable index.
    SetAtATime,
    /// Set-based evaluation over the fragmented term–document table.
    Fragmented(Strategy),
}

impl PhysicalPlan {
    /// Every enumerable plan, in the planner's tie-breaking preference
    /// order (earlier wins on equal cost).
    pub const ALL: [PhysicalPlan; 8] = [
        PhysicalPlan::PrunedDaat,
        PhysicalPlan::SetAtATime,
        PhysicalPlan::ExhaustiveDaat,
        PhysicalPlan::Fragmented(Strategy::Switch { use_b_index: true }),
        PhysicalPlan::Fragmented(Strategy::Switch { use_b_index: false }),
        PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index: true }),
        PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index: false }),
        PhysicalPlan::Fragmented(Strategy::FullScan),
    ];

    /// The operator's display name (stable, used by EXPLAIN and the
    /// benchmark JSON).
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalPlan::PrunedDaat => "pruned_daat",
            PhysicalPlan::ExhaustiveDaat => "exhaustive_daat",
            PhysicalPlan::SetAtATime => "set_at_a_time",
            PhysicalPlan::Fragmented(Strategy::FullScan) => "frag_full_scan",
            PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index: false }) => "frag_a_only",
            PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index: true }) => {
                "frag_a_only_indexed"
            }
            PhysicalPlan::Fragmented(Strategy::Switch { use_b_index: false }) => "frag_switch",
            PhysicalPlan::Fragmented(Strategy::Switch { use_b_index: true }) => {
                "frag_switch_indexed"
            }
        }
    }
}

/// Unified execution counters shared by every engine path. The same five
/// work measures mean the same thing everywhere, so the planner's
/// predictions — and the calibration loop feeding measurements back into
/// the cost weights — compare like with like.
#[derive(Debug, Clone, PartialEq, Default)]
#[must_use]
pub struct ExecReport {
    /// Top `(doc, score)` pairs, best first (score desc, doc id asc).
    pub top: Vec<(u32, f64)>,
    /// Elements inspected: postings scored on the cursor/accumulator
    /// paths, table entries inspected on the fragmented paths.
    pub postings_scanned: usize,
    /// Elements bypassed without scoring (galloping skips, pruned tails,
    /// bound-pruned probes).
    pub docs_skipped: usize,
    /// Skip operations issued (galloping cursor seeks, sparse-index range
    /// lookups).
    pub seeks: usize,
    /// Bound tests that pruned work (candidate gates, abandoned documents).
    pub bound_exits: usize,
    /// Documents whose exact score was computed and offered to the top-N
    /// heap.
    pub candidates: usize,
    /// Whether the evaluation was truncated by an expired per-query
    /// deadline ([`crate::deadline::DeadlineGate`]): `top` holds only
    /// exactly scored documents found before expiry, and the counters
    /// describe the work actually performed — never the work skipped by
    /// truncation.
    pub partial: bool,
}

impl ExecReport {
    /// Fold another report's counters into this one (the `top` ranking is
    /// left untouched) — the aggregation primitive the experiments use
    /// instead of copying fields by hand. Partiality is sticky: an
    /// aggregate over any truncated execution is itself partial.
    ///
    /// Saturating: a sustained-load run folds millions of reports into
    /// one ledger, and on a 32-bit `usize` that can genuinely reach the
    /// ceiling — an aggregate that clamps at `usize::MAX` reads as "at
    /// least this much work", where a wrapped one silently reads as
    /// almost none.
    pub fn absorb(&mut self, other: &ExecReport) {
        self.postings_scanned = self.postings_scanned.saturating_add(other.postings_scanned);
        self.docs_skipped = self.docs_skipped.saturating_add(other.docs_skipped);
        self.seeks = self.seeks.saturating_add(other.seeks);
        self.bound_exits = self.bound_exits.saturating_add(other.bound_exits);
        self.candidates = self.candidates.saturating_add(other.candidates);
        self.partial |= other.partial;
    }
}

impl From<DaatReport> for ExecReport {
    fn from(r: DaatReport) -> ExecReport {
        ExecReport {
            top: r.top,
            postings_scanned: r.postings_scanned,
            docs_skipped: r.docs_skipped,
            seeks: r.seeks,
            bound_exits: r.bound_exits,
            candidates: r.candidates,
            partial: r.timed_out,
        }
    }
}

impl DaatStats {
    /// Pair scratch-path counters with an owned ranking into the unified
    /// report shape.
    fn with_top(self, top: Vec<(u32, f64)>) -> ExecReport {
        ExecReport {
            top,
            postings_scanned: self.postings_scanned,
            docs_skipped: self.docs_skipped,
            seeks: self.seeks,
            bound_exits: self.bound_exits,
            candidates: self.candidates,
            partial: self.timed_out,
        }
    }
}

impl From<SearchReport> for ExecReport {
    fn from(r: SearchReport) -> ExecReport {
        ExecReport {
            top: r.top,
            postings_scanned: r.postings_scanned,
            docs_skipped: 0,
            seeks: 0,
            bound_exits: 0,
            candidates: r.candidates,
            partial: r.timed_out,
        }
    }
}

impl From<FragSearchReport> for ExecReport {
    fn from(r: FragSearchReport) -> ExecReport {
        ExecReport {
            top: r.top,
            postings_scanned: r.postings_scanned,
            docs_skipped: r.postings_pruned,
            seeks: r.seeks,
            bound_exits: r.bound_exits,
            candidates: r.candidates,
            partial: r.timed_out,
        }
    }
}

/// A uniformly executable physical retrieval operator.
pub trait RetrievalOp {
    /// The operator's display name.
    fn name(&self) -> &'static str;
    /// Evaluate a bag-of-terms query, returning the top `n` with unified
    /// work counters.
    fn execute(&mut self, terms: &[u32], n: usize) -> Result<ExecReport>;
}

/// The MaxScore-pruned DAAT kernel as a physical operator.
#[derive(Debug)]
pub struct PrunedDaatOp<'a>(pub DaatSearcher<'a>);

impl RetrievalOp for PrunedDaatOp<'_> {
    fn name(&self) -> &'static str {
        PhysicalPlan::PrunedDaat.name()
    }

    fn execute(&mut self, terms: &[u32], n: usize) -> Result<ExecReport> {
        Ok(self.0.search(terms, n)?.into())
    }
}

/// The exhaustive cursor merge as a physical operator.
#[derive(Debug)]
pub struct ExhaustiveDaatOp<'a>(pub DaatSearcher<'a>);

impl RetrievalOp for ExhaustiveDaatOp<'_> {
    fn name(&self) -> &'static str {
        PhysicalPlan::ExhaustiveDaat.name()
    }

    fn execute(&mut self, terms: &[u32], n: usize) -> Result<ExecReport> {
        Ok(self.0.search_exhaustive(terms, n)?.into())
    }
}

/// The set-at-a-time accumulator engine as a physical operator.
#[derive(Debug)]
pub struct SetAtATimeOp<'a>(pub Searcher<'a>);

impl RetrievalOp for SetAtATimeOp<'_> {
    fn name(&self) -> &'static str {
        PhysicalPlan::SetAtATime.name()
    }

    fn execute(&mut self, terms: &[u32], n: usize) -> Result<ExecReport> {
        Ok(self.0.search(terms, n)?.into())
    }
}

/// One fragmented strategy as a physical operator.
#[derive(Debug)]
pub struct FragmentedOp<'a> {
    /// The (shared, reusable) fragmented evaluator.
    pub searcher: &'a mut FragSearcher,
    /// The strategy this operator instance executes.
    pub strategy: Strategy,
}

impl RetrievalOp for FragmentedOp<'_> {
    fn name(&self) -> &'static str {
        PhysicalPlan::Fragmented(self.strategy).name()
    }

    fn execute(&mut self, terms: &[u32], n: usize) -> Result<ExecReport> {
        Ok(self.searcher.search(terms, n, self.strategy)?.into())
    }
}

/// All four engine paths behind one dispatcher, sharing one
/// [`ScoreKernel`] (per-document norms), one lazily built [`ScoreBounds`]
/// (pruning tables, paid only when a DAAT plan actually prunes), one
/// epoch accumulator, and one [`FragSearcher`].
#[derive(Debug)]
pub struct EngineSet {
    frag: Arc<FragmentedIndex>,
    policy: SwitchPolicy,
    kernel: Arc<ScoreKernel>,
    daat_bounds: Arc<OnceLock<ScoreBounds>>,
    saat_accum: EpochAccumulator,
    frag_searcher: FragSearcher,
    /// The reusable query-execution arena of this engine's DAAT paths:
    /// cursor decode buffers, bound work lists, heap, and result storage
    /// all persist across queries, so steady-state execution allocates
    /// only the returned report's ranking. One per engine set means one
    /// per `moa_serve` shard — the per-shard scratch pool.
    scratch: QueryScratch,
}

// The serving layer moves engine sets onto scoped shard threads and
// shares kernels and thresholds across them; pin the thread-safety of the
// whole engine stack at compile time so a non-Send field can never sneak
// in and silently un-thread the shard executor.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineSet>();
    assert_send_sync::<QueryScratch>();
    assert_send_sync::<ScoreKernel>();
    assert_send_sync::<ScoreBounds>();
    assert_send_sync::<EpochAccumulator>();
    assert_send_sync::<FragSearcher>();
    assert_send_sync::<crate::threshold::SharedThreshold>();
    assert_send_sync::<BoundGate>();
    assert_send_sync::<crate::deadline::DeadlineGate>();
};

impl EngineSet {
    /// Build the engine set for one `(fragmented index, model, policy)`.
    pub fn new(frag: Arc<FragmentedIndex>, model: RankingModel, policy: SwitchPolicy) -> EngineSet {
        let kernel = Arc::new(ScoreKernel::new(model, frag.index()));
        EngineSet::with_kernel(frag, kernel, policy)
    }

    /// Build the engine set around an existing scoring kernel. The shard
    /// fan-out uses this: document-partition shards carry the *global*
    /// catalog statistics ([`crate::index::InvertedIndex::shard_by_docs`]),
    /// so one kernel (per-document norm table + collection stats) is
    /// bit-identical for every shard and is built once and shared, while
    /// the [`ScoreBounds`] tables stay per-shard (they depend on the
    /// shard-resident postings). `kernel` must have been built for the
    /// same collection statistics, document lengths, and ranking model as
    /// `frag.index()` — an index sharded from the kernel's source index
    /// satisfies this by construction.
    pub fn with_kernel(
        frag: Arc<FragmentedIndex>,
        kernel: Arc<ScoreKernel>,
        policy: SwitchPolicy,
    ) -> EngineSet {
        let daat_bounds: Arc<OnceLock<ScoreBounds>> = Arc::new(OnceLock::new());
        let saat_accum = EpochAccumulator::new(frag.index().num_docs());
        // The fragmented path prunes on the very same bound tables the
        // DAAT kernel skips with — one lazy build serves both.
        let frag_searcher = FragSearcher::with_shared(
            Arc::clone(&frag),
            Arc::clone(&kernel),
            Arc::clone(&daat_bounds),
            policy,
        );
        EngineSet {
            frag,
            policy,
            kernel,
            daat_bounds,
            saat_accum,
            frag_searcher,
            scratch: QueryScratch::new(),
        }
    }

    /// The fragmented index the engines evaluate over.
    pub fn fragments(&self) -> &Arc<FragmentedIndex> {
        &self.frag
    }

    /// The ranking model all engines share.
    pub fn model(&self) -> RankingModel {
        self.kernel.model()
    }

    /// The switch policy the fragmented strategies consult.
    pub fn policy(&self) -> SwitchPolicy {
        self.policy
    }

    /// Lifetime count of DAAT queries served out of this engine's owned
    /// [`QueryScratch`] arena. A persistent serving worker that reuses one
    /// engine set across a whole query stream accumulates the stream here —
    /// the observable the pool hand-off tests pin instead of trusting that
    /// no per-batch arena was silently created.
    pub fn scratch_queries(&self) -> u64 {
        self.scratch.queries_begun()
    }

    /// Per-phase wall times of the most recent
    /// [`EngineSet::execute`]/[`EngineSet::execute_gated`] call: gate
    /// pass / decode / score / merge for the DAAT paths, a single score
    /// span for the set-at-a-time and fragmented paths (whose decode and
    /// scoring interleave with no cheap stage boundary). A `Copy`
    /// snapshot — callers fold it into traces without holding the engine.
    pub fn last_phases(&self) -> moa_obs::PhaseAgg {
        self.scratch.phases()
    }

    /// Restore every piece of cross-query execution state to a sound
    /// baseline after an *abandoned* evaluation — one that unwound out of
    /// an engine path mid-query (a panic caught at a serving-worker
    /// boundary). The epoch accumulators retire their current epoch in
    /// O(1), invalidating any partial sums; the scratch arena needs no
    /// action (every entry re-`begin`s it). Index, kernel, and bound
    /// tables are immutable during execution and stay shared.
    pub fn reset_execution_state(&mut self) {
        self.saat_accum.retire();
        self.frag_searcher.reset_scratch();
    }

    /// Execute `plan` for a query, dispatching through the uniform
    /// [`RetrievalOp`] interface.
    pub fn execute(&mut self, plan: PhysicalPlan, terms: &[u32], n: usize) -> Result<ExecReport> {
        self.execute_gated(plan, terms, n, &BoundGate::none())
    }

    /// [`EngineSet::execute`] with a cross-engine threshold hook. The
    /// pruning paths (pruned DAAT, the fragmented bound-score pass)
    /// consult and feed `gate` inside their hot loops; the exhaustive
    /// paths cannot skip work on it but still publish their N-th score so
    /// concurrent engines tighten off this one's result.
    pub fn execute_gated(
        &mut self,
        plan: PhysicalPlan,
        terms: &[u32],
        n: usize,
        gate: &BoundGate,
    ) -> Result<ExecReport> {
        let report: Result<ExecReport> = match plan {
            PhysicalPlan::PrunedDaat => {
                let daat = DaatSearcher::with_shared(
                    self.frag.index(),
                    Arc::clone(&self.kernel),
                    Arc::clone(&self.daat_bounds),
                );
                daat.search_into(terms, n, gate, &mut self.scratch)
                    .map(|stats| stats.with_top(self.scratch.out.clone()))
            }
            PhysicalPlan::ExhaustiveDaat => {
                let daat = DaatSearcher::with_shared(
                    self.frag.index(),
                    Arc::clone(&self.kernel),
                    Arc::clone(&self.daat_bounds),
                );
                daat.search_exhaustive_gated_into(terms, n, gate, &mut self.scratch)
                    .map(|stats| stats.with_top(self.scratch.out.clone()))
            }
            PhysicalPlan::SetAtATime => {
                // Swap the long-lived accumulator through a short-lived
                // searcher view: no per-query O(num_docs) allocation.
                // Decode and accumulation interleave per term run inside
                // the searcher, so the whole call is one score span (the
                // DAAT paths, which have real stage boundaries, break
                // theirs down further).
                self.scratch.phases.reset();
                let t_score = std::time::Instant::now();
                let accum = std::mem::replace(&mut self.saat_accum, EpochAccumulator::new(0));
                let mut searcher =
                    Searcher::with_state(self.frag.index(), Arc::clone(&self.kernel), accum);
                let report = searcher.search_gated(terms, n, gate).map(ExecReport::from);
                self.saat_accum = searcher.into_accum();
                self.scratch
                    .phases
                    .add(moa_obs::Phase::Score, t_score.elapsed());
                report
            }
            PhysicalPlan::Fragmented(strategy) => {
                self.scratch.phases.reset();
                let t_score = std::time::Instant::now();
                let report = self
                    .frag_searcher
                    .search_gated(terms, n, strategy, gate)
                    .map(ExecReport::from);
                self.scratch
                    .phases
                    .add(moa_obs::Phase::Score, t_score.elapsed());
                report
            }
        };
        let report = report?;
        // A complete top-N proves N documents of at least the tail score
        // exist, whichever path produced it.
        if report.top.len() == n {
            if let Some(&(_, tail)) = report.top.last() {
                gate.publish_score(tail);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentSpec;
    use crate::index::InvertedIndex;
    use moa_corpus::{generate_queries, Collection, CollectionConfig, QueryConfig};

    fn engines() -> (Collection, EngineSet) {
        let c = Collection::generate(CollectionConfig::tiny())
            .expect("tiny preset is a valid collection config");
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        let mut frag = FragmentedIndex::build(idx, FragmentSpec::TermFraction(0.9))
            .expect("a generated collection is never empty");
        frag.fragment_a_mut()
            .build_sparse_index(64)
            .expect("fragment term column is sorted");
        frag.fragment_b_mut()
            .build_sparse_index(64)
            .expect("fragment term column is sorted");
        let set = EngineSet::new(
            Arc::new(frag),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        (c, set)
    }

    /// The plans guaranteed to produce the exact (complete-score) top-N.
    fn exact_plans() -> Vec<PhysicalPlan> {
        vec![
            PhysicalPlan::PrunedDaat,
            PhysicalPlan::ExhaustiveDaat,
            PhysicalPlan::SetAtATime,
            PhysicalPlan::Fragmented(Strategy::FullScan),
        ]
    }

    #[test]
    fn every_exact_plan_returns_the_identical_topn() {
        let (c, mut set) = engines();
        let queries = generate_queries(&c, &QueryConfig::default())
            .expect("default query workload fits the tiny collection");
        for q in queries.iter().take(10) {
            for n in [1usize, 10, c.num_docs()] {
                let reference = set
                    .execute(PhysicalPlan::SetAtATime, &q.terms, n)
                    .expect("generated query terms are all in vocabulary");
                for plan in exact_plans() {
                    let rep = set
                        .execute(plan, &q.terms, n)
                        .expect("generated query terms are all in vocabulary");
                    assert_eq!(
                        rep.top,
                        reference.top,
                        "{} diverged (n={n}, q={:?})",
                        plan.name(),
                        q.terms
                    );
                }
            }
        }
    }

    #[test]
    fn unified_counters_are_populated_per_path() {
        let (c, mut set) = engines();
        let queries = generate_queries(&c, &QueryConfig::default())
            .expect("default query workload fits the tiny collection");
        let q = &queries[0];
        let daat = set
            .execute(PhysicalPlan::PrunedDaat, &q.terms, 5)
            .expect("generated query terms are all in vocabulary");
        assert!(daat.postings_scanned > 0);
        assert!(daat.candidates > 0);
        let frag = set
            .execute(PhysicalPlan::Fragmented(Strategy::FullScan), &q.terms, 5)
            .expect("generated query terms are all in vocabulary");
        assert_eq!(
            frag.postings_scanned,
            set.fragments().index().num_postings(),
            "full scan inspects the whole volume"
        );
        let saat = set
            .execute(PhysicalPlan::SetAtATime, &q.terms, 5)
            .expect("generated query terms are all in vocabulary");
        assert_eq!(saat.docs_skipped, 0);
        assert_eq!(saat.seeks, 0);
    }

    #[test]
    fn absorb_aggregates_counters() {
        let mut total = ExecReport::default();
        let a = ExecReport {
            top: vec![(1, 2.0)],
            postings_scanned: 10,
            docs_skipped: 3,
            seeks: 2,
            bound_exits: 1,
            candidates: 4,
            partial: false,
        };
        total.absorb(&a);
        total.absorb(&a);
        assert_eq!(total.postings_scanned, 20);
        assert_eq!(total.docs_skipped, 6);
        assert_eq!(total.seeks, 4);
        assert_eq!(total.bound_exits, 2);
        assert_eq!(total.candidates, 8);
        assert!(total.top.is_empty(), "absorb must not merge rankings");
        assert!(!total.partial);
        let p = ExecReport {
            partial: true,
            ..ExecReport::default()
        };
        total.absorb(&p);
        assert!(total.partial, "partiality must be sticky under absorb");
    }

    #[test]
    fn absorb_saturates_instead_of_wrapping() {
        // A sustained-load ledger near the usize ceiling must clamp, not
        // wrap to a tiny figure that reads as "almost no work".
        let mut total = ExecReport {
            postings_scanned: usize::MAX - 5,
            docs_skipped: usize::MAX,
            seeks: usize::MAX - 1,
            bound_exits: 0,
            candidates: usize::MAX / 2 + 1,
            ..ExecReport::default()
        };
        let more = ExecReport {
            postings_scanned: 10,
            docs_skipped: 1,
            seeks: 1,
            bound_exits: usize::MAX,
            candidates: usize::MAX / 2 + 1,
            ..ExecReport::default()
        };
        total.absorb(&more);
        assert_eq!(total.postings_scanned, usize::MAX);
        assert_eq!(total.docs_skipped, usize::MAX);
        assert_eq!(total.seeks, usize::MAX);
        assert_eq!(total.bound_exits, usize::MAX);
        assert_eq!(total.candidates, usize::MAX);
    }

    #[test]
    fn plan_names_are_unique_and_stable() {
        let mut names: Vec<&str> = PhysicalPlan::ALL.iter().map(PhysicalPlan::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PhysicalPlan::ALL.len());
        assert_eq!(PhysicalPlan::PrunedDaat.name(), "pruned_daat");
    }

    #[test]
    fn trait_object_dispatch_works() {
        let (c, set) = engines();
        let queries = generate_queries(&c, &QueryConfig::default())
            .expect("default query workload fits the tiny collection");
        let q = &queries[0];
        let index = Arc::clone(set.fragments());
        let daat = DaatSearcher::new(index.index(), RankingModel::default());
        let mut pruned = PrunedDaatOp(daat);
        let ops: Vec<&mut dyn RetrievalOp> = vec![&mut pruned];
        for op in ops {
            let rep = op
                .execute(&q.terms, 5)
                .expect("generated query terms are all in vocabulary");
            assert!(!rep.top.is_empty());
            assert_eq!(op.name(), "pruned_daat");
        }
    }
}
