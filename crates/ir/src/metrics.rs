//! Retrieval effectiveness metrics.
//!
//! The paper reports *relative* answer-quality changes ("quality dropped
//! more than 30%"); we provide both absolute metrics against qrels
//! (precision, recall, average precision) and ranking-overlap metrics
//! against a reference run (the unfragmented ranking), which is how the
//! degradation of the unsafe strategy is quantified.

use std::collections::HashSet;

/// Precision at cutoff `k`: fraction of the top-`k` that is relevant.
/// Returns `None` for `k == 0`.
pub fn precision_at(ranking: &[u32], relevant: &HashSet<u32>, k: usize) -> Option<f64> {
    if k == 0 {
        return None;
    }
    let considered = ranking.iter().take(k);
    let hits = considered.filter(|d| relevant.contains(d)).count();
    Some(hits as f64 / k as f64)
}

/// Recall at cutoff `k`: fraction of the relevant set found in the top-`k`.
/// Returns `None` when the relevant set is empty.
pub fn recall_at(ranking: &[u32], relevant: &HashSet<u32>, k: usize) -> Option<f64> {
    if relevant.is_empty() {
        return None;
    }
    let hits = ranking
        .iter()
        .take(k)
        .filter(|d| relevant.contains(d))
        .count();
    Some(hits as f64 / relevant.len() as f64)
}

/// (Non-interpolated) average precision of a ranking. Returns `None` when
/// the relevant set is empty (the query is skipped, TREC-style).
pub fn average_precision(ranking: &[u32], relevant: &HashSet<u32>) -> Option<f64> {
    if relevant.is_empty() {
        return None;
    }
    let mut hits = 0usize;
    let mut sum = 0.0f64;
    for (i, d) in ranking.iter().enumerate() {
        if relevant.contains(d) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    Some(sum / relevant.len() as f64)
}

/// Mean of the present values (queries without judgments are skipped).
/// Returns `None` when no value is present.
pub fn mean_of(values: impl IntoIterator<Item = Option<f64>>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values.into_iter().flatten() {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Overlap at `k`: the fraction of the reference's top-`k` that the other
/// ranking's top-`k` retains. Normalized by the reference prefix actually
/// available (`min(k, a.len())`), so comparing a ranking against itself is
/// always 1.0 even when fewer than `k` documents match. Returns `None` for
/// `k == 0` or an empty reference.
pub fn overlap_at(a: &[u32], b: &[u32], k: usize) -> Option<f64> {
    if k == 0 || a.is_empty() {
        return None;
    }
    let sa: HashSet<u32> = a.iter().take(k).copied().collect();
    let hits = b.iter().take(k).filter(|d| sa.contains(d)).count();
    Some(hits as f64 / sa.len() as f64)
}

/// Spearman footrule distance between the top-`k` of a reference ranking
/// and another ranking, normalized to `[0, 1]` (0 = identical order).
/// Documents missing from the other ranking are charged the maximum
/// displacement `k`.
pub fn footrule_at(reference: &[u32], other: &[u32], k: usize) -> Option<f64> {
    if k == 0 {
        return None;
    }
    let k = k.min(reference.len());
    if k == 0 {
        return None;
    }
    let pos_other: std::collections::HashMap<u32, usize> =
        other.iter().enumerate().map(|(i, &d)| (d, i)).collect();
    let mut total = 0usize;
    for (i, d) in reference.iter().take(k).enumerate() {
        let displacement = match pos_other.get(d) {
            Some(&j) => i.abs_diff(j).min(k),
            None => k,
        };
        total += displacement;
    }
    // Maximum possible: every item displaced by k.
    Some(total as f64 / (k * k) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(ids: &[u32]) -> HashSet<u32> {
        ids.iter().copied().collect()
    }

    #[test]
    fn precision_counts_hits_in_prefix() {
        let ranking = vec![1, 2, 3, 4, 5];
        let relevant = rel(&[1, 3, 9]);
        assert_eq!(precision_at(&ranking, &relevant, 1), Some(1.0));
        assert_eq!(precision_at(&ranking, &relevant, 2), Some(0.5));
        assert_eq!(precision_at(&ranking, &relevant, 5), Some(0.4));
        assert_eq!(precision_at(&ranking, &relevant, 0), None);
    }

    #[test]
    fn precision_with_short_ranking() {
        // k beyond the ranking length counts misses.
        let relevant = rel(&[1]);
        assert_eq!(precision_at(&[1], &relevant, 4), Some(0.25));
    }

    #[test]
    fn recall_fraction_of_relevant() {
        let ranking = vec![1, 2, 3];
        let relevant = rel(&[1, 3, 9, 10]);
        assert_eq!(recall_at(&ranking, &relevant, 3), Some(0.5));
        assert_eq!(recall_at(&ranking, &relevant, 1), Some(0.25));
        assert_eq!(recall_at(&ranking, &rel(&[]), 3), None);
    }

    #[test]
    fn average_precision_textbook_example() {
        // Relevant docs at ranks 1, 3, 5 out of 5; |rel| = 3.
        let ranking = vec![10, 20, 30, 40, 50];
        let relevant = rel(&[10, 30, 50]);
        let expect = (1.0 / 1.0 + 2.0 / 3.0 + 3.0 / 5.0) / 3.0;
        let got = average_precision(&ranking, &relevant).unwrap();
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn average_precision_perfect_and_empty() {
        let relevant = rel(&[1, 2]);
        assert_eq!(average_precision(&[1, 2, 3], &relevant), Some(1.0));
        assert_eq!(average_precision(&[3, 4], &relevant), Some(0.0));
        assert_eq!(average_precision(&[1], &rel(&[])), None);
    }

    #[test]
    fn unranked_relevant_docs_lower_ap() {
        let relevant = rel(&[1, 2, 99]);
        let ap = average_precision(&[1, 2], &relevant).unwrap();
        assert!((ap - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_skips_missing() {
        assert_eq!(mean_of([Some(1.0), None, Some(3.0)]), Some(2.0));
        assert_eq!(mean_of([None, None]), None);
        assert_eq!(mean_of([]), None);
    }

    #[test]
    fn overlap_symmetric_prefix_intersection() {
        let a = vec![1, 2, 3, 4];
        let b = vec![3, 2, 9, 1];
        assert_eq!(overlap_at(&a, &b, 3), Some(2.0 / 3.0));
        assert_eq!(overlap_at(&a, &b, 4), Some(0.75));
        assert_eq!(overlap_at(&a, &a, 4), Some(1.0));
        assert_eq!(overlap_at(&a, &b, 0), None);
    }

    #[test]
    fn overlap_short_rankings_self_compare_to_one() {
        // Fewer matches than k: self-overlap still 1.0.
        let a = vec![7, 9];
        assert_eq!(overlap_at(&a, &a, 20), Some(1.0));
        assert_eq!(overlap_at(&[], &a, 20), None);
        // And a disjoint other ranking scores 0.
        assert_eq!(overlap_at(&a, &[1, 2], 20), Some(0.0));
    }

    #[test]
    fn footrule_zero_for_identical() {
        let a = vec![1, 2, 3, 4, 5];
        assert_eq!(footrule_at(&a, &a, 5), Some(0.0));
    }

    #[test]
    fn footrule_max_for_disjoint() {
        let a = vec![1, 2, 3];
        let b = vec![7, 8, 9];
        assert_eq!(footrule_at(&a, &b, 3), Some(1.0));
    }

    #[test]
    fn footrule_partial_displacement() {
        let a = vec![1, 2];
        let b = vec![2, 1];
        // Each displaced by 1; max = 2·2 = 4 → 2/4.
        assert_eq!(footrule_at(&a, &b, 2), Some(0.5));
        assert_eq!(footrule_at(&a, &b, 0), None);
    }
}
