//! The inverted index: a term-major term–document matrix.
//!
//! Postings are stored columnar — `(doc, tf)` runs per term, exactly the
//! flattened BAT representation Moa produces on MonetDB. Collection-wide
//! statistics (df, cf, max tf, document lengths) are kept alongside; the
//! ranking models and the fragmentation safety check consume them.

use moa_corpus::Collection;
use moa_storage::{Bat, Column};

use crate::error::{IrError, Result};

/// Collection statistics needed by ranking models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// Number of documents.
    pub num_docs: usize,
    /// Average document length in tokens.
    pub avg_doc_len: f64,
    /// Total tokens in the collection.
    pub total_tokens: u64,
}

/// A term-major inverted index over a document collection.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    stats: CollectionStats,
    doc_len: Vec<u32>,
    df: Vec<u32>,
    cf: Vec<u64>,
    /// Highest within-document tf of each term (upper bound for the safety
    /// check's score-contribution estimates).
    max_tf: Vec<u32>,
    /// Posting payloads, term-major.
    post_docs: Vec<u32>,
    post_tfs: Vec<u32>,
    /// `term_offsets[t]..term_offsets[t+1]` is term `t`'s run.
    term_offsets: Vec<usize>,
}

impl InvertedIndex {
    /// Build an index from a generated collection.
    pub fn from_collection(collection: &Collection) -> InvertedIndex {
        let triples: Vec<(u32, u32, u32)> = collection
            .postings()
            .iter()
            .map(|p| (p.term, p.doc, p.tf))
            .collect();
        InvertedIndex::from_sorted_postings(
            collection.vocab_size(),
            collection.doc_len().to_vec(),
            &triples,
        )
        .expect("generated collections are non-empty and sorted")
    }

    /// Build an index from `(term, doc, tf)` triples sorted by `(term,
    /// doc)`, with the given vocabulary size and per-document token counts.
    /// Used by [`crate::text::IndexBuilder`] and available for custom
    /// ingestion pipelines.
    pub fn from_sorted_postings(
        vocab: usize,
        doc_len: Vec<u32>,
        postings: &[(u32, u32, u32)],
    ) -> Result<InvertedIndex> {
        if doc_len.is_empty() {
            return Err(IrError::InvalidConfig(
                "index needs at least one document".into(),
            ));
        }
        if postings
            .windows(2)
            .any(|w| (w[0].0, w[0].1) > (w[1].0, w[1].1))
        {
            return Err(IrError::InvalidConfig(
                "postings must be sorted by (term, doc)".into(),
            ));
        }
        let mut post_docs = Vec::with_capacity(postings.len());
        let mut post_tfs = Vec::with_capacity(postings.len());
        let mut df = vec![0u32; vocab];
        let mut cf = vec![0u64; vocab];
        let mut max_tf = vec![0u32; vocab];
        let mut term_offsets = vec![0usize; vocab + 1];
        for &(term, doc, tf) in postings {
            let t = term as usize;
            if t >= vocab {
                return Err(IrError::UnknownTerm(term));
            }
            if doc as usize >= doc_len.len() {
                return Err(IrError::InvalidConfig(format!(
                    "posting references doc {doc} beyond {} documents",
                    doc_len.len()
                )));
            }
            post_docs.push(doc);
            post_tfs.push(tf);
            df[t] += 1;
            cf[t] += u64::from(tf);
            max_tf[t] = max_tf[t].max(tf);
            term_offsets[t + 1] += 1;
        }
        for t in 0..vocab {
            term_offsets[t + 1] += term_offsets[t];
        }
        let total_tokens: u64 = doc_len.iter().map(|&l| u64::from(l)).sum();
        Ok(InvertedIndex {
            stats: CollectionStats {
                num_docs: doc_len.len(),
                avg_doc_len: total_tokens as f64 / doc_len.len() as f64,
                total_tokens,
            },
            doc_len,
            df,
            cf,
            max_tf,
            post_docs,
            post_tfs,
            term_offsets,
        })
    }

    /// Collection statistics.
    pub fn stats(&self) -> CollectionStats {
        self.stats
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.stats.num_docs
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.df.len()
    }

    /// Total number of postings (the data volume unit of the fragmentation
    /// experiments).
    pub fn num_postings(&self) -> usize {
        self.post_docs.len()
    }

    /// Document frequency of a term.
    pub fn df(&self, term: u32) -> Result<u32> {
        self.df
            .get(term as usize)
            .copied()
            .ok_or(IrError::UnknownTerm(term))
    }

    /// Collection frequency of a term.
    pub fn cf(&self, term: u32) -> Result<u64> {
        self.cf
            .get(term as usize)
            .copied()
            .ok_or(IrError::UnknownTerm(term))
    }

    /// Highest within-document tf of a term.
    pub fn max_tf(&self, term: u32) -> Result<u32> {
        self.max_tf
            .get(term as usize)
            .copied()
            .ok_or(IrError::UnknownTerm(term))
    }

    /// Length (token count) of a document.
    pub fn doc_len(&self, doc: u32) -> u32 {
        self.doc_len.get(doc as usize).copied().unwrap_or(0)
    }

    /// All document lengths.
    pub fn doc_lens(&self) -> &[u32] {
        &self.doc_len
    }

    /// Length of a term's *resident* posting run. Equals `df` on an index
    /// built from a whole collection; on a document-partition shard
    /// ([`InvertedIndex::shard_by_docs`]) it is the number of postings
    /// physically present in this shard, while `df` stays the collection-
    /// wide catalog statistic. Work estimates (planner pricing, scan
    /// volumes) should use this; ranking-model inputs should use `df`.
    pub fn run_len(&self, term: u32) -> Result<usize> {
        let t = term as usize;
        if t >= self.df.len() {
            return Err(IrError::UnknownTerm(term));
        }
        Ok(self.term_offsets[t + 1] - self.term_offsets[t])
    }

    /// The posting run of a term: aligned `(docs, tfs)` slices.
    pub fn postings(&self, term: u32) -> Result<(&[u32], &[u32])> {
        let t = term as usize;
        if t >= self.df.len() {
            return Err(IrError::UnknownTerm(term));
        }
        let (s, e) = (self.term_offsets[t], self.term_offsets[t + 1]);
        Ok((&self.post_docs[s..e], &self.post_tfs[s..e]))
    }

    /// A skippable cursor over a term's posting run, for
    /// document-at-a-time merging with bounds-based pruning
    /// ([`crate::daat::DaatSearcher`]).
    pub fn cursor(&self, term: u32) -> Result<PostingCursor<'_>> {
        let (docs, tfs) = self.postings(term)?;
        Ok(PostingCursor { docs, tfs, pos: 0 })
    }

    /// Materialize a term's postings as a `(doc → tf)` BAT — the
    /// flattened-Moa view used by the algebra layer.
    pub fn postings_bat(&self, term: u32) -> Result<Bat> {
        let (docs, tfs) = self.postings(term)?;
        Ok(Bat::new(docs.to_vec(), Column::from(tfs.to_vec()))
            .expect("aligned slices have equal length"))
    }

    /// Per-term df table as a dense BAT (term oid → df), for the algebra
    /// and cost layers.
    pub fn df_bat(&self) -> Bat {
        Bat::dense(Column::from(self.df.clone()))
    }

    /// Build a document-partition *shard* of this index: only postings
    /// whose document passes `keep` are retained, while **every catalog
    /// statistic stays global** — `df`, `cf`, `max_tf`, the per-document
    /// lengths, and the collection stats are copied from the full index
    /// unchanged. Ranking-model weights computed on the shard are
    /// therefore bit-identical to the unsharded index (same `f64`
    /// constants, same per-document norms, same document ids), which is
    /// what lets `moa_serve` merge shard-local top-N heaps into the exact
    /// single-engine answer. Shard-local *work* figures come from
    /// [`InvertedIndex::run_len`] and [`InvertedIndex::num_postings`],
    /// which do reflect only the resident postings.
    pub fn shard_by_docs(&self, keep: impl Fn(u32) -> bool) -> InvertedIndex {
        let vocab = self.vocab_size();
        let mut post_docs = Vec::new();
        let mut post_tfs = Vec::new();
        let mut term_offsets = vec![0usize; vocab + 1];
        for t in 0..vocab {
            let (s, e) = (self.term_offsets[t], self.term_offsets[t + 1]);
            for i in s..e {
                let doc = self.post_docs[i];
                if keep(doc) {
                    post_docs.push(doc);
                    post_tfs.push(self.post_tfs[i]);
                }
            }
            term_offsets[t + 1] = post_docs.len();
        }
        InvertedIndex {
            stats: self.stats,
            doc_len: self.doc_len.clone(),
            df: self.df.clone(),
            cf: self.cf.clone(),
            max_tf: self.max_tf.clone(),
            post_docs,
            post_tfs,
            term_offsets,
        }
    }

    /// Partition this index into `shards` document-partition shards in
    /// **one pass** over the postings: `assign(doc)` names each
    /// document's shard (values ≥ `shards` are clamped to the last).
    /// Each shard is exactly what [`InvertedIndex::shard_by_docs`] would
    /// have produced for its predicate, at 1/P of the construction cost —
    /// the constructor the shard fan-out uses.
    pub fn shard_by_docs_multi(
        &self,
        shards: usize,
        assign: impl Fn(u32) -> usize,
    ) -> Vec<InvertedIndex> {
        let p = shards.max(1);
        let vocab = self.vocab_size();
        let mut docs: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut tfs: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut offsets: Vec<Vec<usize>> = vec![vec![0usize; vocab + 1]; p];
        for t in 0..vocab {
            let (s, e) = (self.term_offsets[t], self.term_offsets[t + 1]);
            for i in s..e {
                let doc = self.post_docs[i];
                let shard = assign(doc).min(p - 1);
                docs[shard].push(doc);
                tfs[shard].push(self.post_tfs[i]);
            }
            for shard in 0..p {
                offsets[shard][t + 1] = docs[shard].len();
            }
        }
        docs.into_iter()
            .zip(tfs)
            .zip(offsets)
            .map(|((post_docs, post_tfs), term_offsets)| InvertedIndex {
                stats: self.stats,
                doc_len: self.doc_len.clone(),
                df: self.df.clone(),
                cf: self.cf.clone(),
                max_tf: self.max_tf.clone(),
                post_docs,
                post_tfs,
                term_offsets,
            })
            .collect()
    }

    /// Terms sorted by ascending df (the "most interesting first" order the
    /// fragmentation uses); ties broken by term id. Terms with df = 0 are
    /// excluded.
    pub fn terms_by_df_asc(&self) -> Vec<u32> {
        let mut terms: Vec<u32> = (0..self.df.len() as u32)
            .filter(|&t| self.df[t as usize] > 0)
            .collect();
        terms.sort_by_key(|&t| (self.df[t as usize], t));
        terms
    }
}

/// A forward cursor over one term's posting run with a galloping
/// (exponential + binary search) `seek` — the skip primitive behind the
/// MaxScore-pruned DAAT kernel.
///
/// Postings are doc-sorted, so `seek(d)` lands on the first posting whose
/// document id is ≥ `d` in O(log gap) probes instead of the O(gap) linear
/// scan a plain merge pays.
#[derive(Debug, Clone)]
pub struct PostingCursor<'a> {
    docs: &'a [u32],
    tfs: &'a [u32],
    pos: usize,
}

impl PostingCursor<'_> {
    /// The current posting's document id, or `None` when exhausted.
    #[inline]
    pub fn doc(&self) -> Option<u32> {
        self.docs.get(self.pos).copied()
    }

    /// The current posting's term frequency (0 when exhausted).
    #[inline]
    pub fn tf(&self) -> u32 {
        self.tfs.get(self.pos).copied().unwrap_or(0)
    }

    /// Advance to the next posting.
    #[inline]
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    /// The cursor's position within the posting run (0-based; equals
    /// `len()` when exhausted). Block-max pruning divides this by the
    /// block size to find the current block.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether every posting has been consumed.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.docs.len()
    }

    /// Postings not yet consumed (including the current one).
    #[inline]
    pub fn remaining(&self) -> usize {
        self.docs.len() - self.pos.min(self.docs.len())
    }

    /// Total postings in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the run has no postings at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Advance to the first posting with document id ≥ `target` by
    /// galloping: double a probe stride until it overshoots, then binary
    /// search the bracketed window. Never moves backwards. Returns the
    /// number of postings skipped over (positions passed without being
    /// scored), the pruning work-saved measure.
    pub fn seek(&mut self, target: u32) -> usize {
        let start = self.pos;
        let n = self.docs.len();
        if start >= n || self.docs[start] >= target {
            return 0;
        }
        // Gallop: maintain docs[lo] < target, grow the stride until the
        // probe reaches `target` or falls off the run.
        let mut lo = start;
        let mut step = 1usize;
        loop {
            let probe = lo + step;
            if probe >= n || self.docs[probe] >= target {
                break;
            }
            lo = probe;
            step <<= 1;
        }
        let mut hi = (lo + step).min(n); // docs[hi] >= target, or hi == n
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.docs[mid] < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.pos = hi;
        hi - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_corpus::CollectionConfig;

    fn index() -> InvertedIndex {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        InvertedIndex::from_collection(&c)
    }

    #[test]
    fn stats_are_consistent() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        assert_eq!(idx.num_docs(), c.num_docs());
        assert_eq!(idx.vocab_size(), c.vocab_size());
        assert_eq!(idx.num_postings(), c.num_postings());
        assert_eq!(idx.stats().total_tokens, c.total_tokens());
        let expect_avg = c.total_tokens() as f64 / c.num_docs() as f64;
        assert!((idx.stats().avg_doc_len - expect_avg).abs() < 1e-9);
    }

    #[test]
    fn postings_match_collection() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        for term in [0u32, 5, 100, 1999] {
            let (docs, tfs) = idx.postings(term).unwrap();
            let expect = c.postings_for_term(term);
            assert_eq!(docs.len(), expect.len());
            for (i, p) in expect.iter().enumerate() {
                assert_eq!(docs[i], p.doc);
                assert_eq!(tfs[i], p.tf);
            }
        }
    }

    #[test]
    fn unknown_term_is_error() {
        let idx = index();
        assert!(matches!(
            idx.postings(u32::MAX),
            Err(IrError::UnknownTerm(_))
        ));
        assert!(idx.df(u32::MAX).is_err());
        assert!(idx.cf(u32::MAX).is_err());
        assert!(idx.max_tf(u32::MAX).is_err());
    }

    #[test]
    fn max_tf_bounds_all_postings() {
        let idx = index();
        for term in 0..idx.vocab_size() as u32 {
            let (_, tfs) = idx.postings(term).unwrap();
            let observed_max = tfs.iter().copied().max().unwrap_or(0);
            assert_eq!(idx.max_tf(term).unwrap(), observed_max);
        }
    }

    #[test]
    fn postings_bat_roundtrip() {
        let idx = index();
        let term = idx.terms_by_df_asc().pop().unwrap(); // most frequent
        let bat = idx.postings_bat(term).unwrap();
        let (docs, tfs) = idx.postings(term).unwrap();
        assert_eq!(bat.head_oids(), docs);
        assert_eq!(bat.tail().as_u32().unwrap(), tfs);
    }

    #[test]
    fn terms_by_df_ascending_order() {
        let idx = index();
        let terms = idx.terms_by_df_asc();
        assert!(!terms.is_empty());
        for w in terms.windows(2) {
            assert!(idx.df(w[0]).unwrap() <= idx.df(w[1]).unwrap());
        }
        // All listed terms occur.
        assert!(terms.iter().all(|&t| idx.df(t).unwrap() > 0));
    }

    #[test]
    fn doc_len_out_of_range_is_zero() {
        let idx = index();
        assert_eq!(idx.doc_len(u32::MAX), 0);
    }

    #[test]
    fn df_bat_is_dense_over_vocab() {
        let idx = index();
        let bat = idx.df_bat();
        assert_eq!(bat.len(), idx.vocab_size());
        assert!(bat.props().head_dense);
    }

    #[test]
    fn cursor_walks_postings_in_order() {
        let idx = index();
        let term = *idx.terms_by_df_asc().last().unwrap();
        let (docs, tfs) = idx.postings(term).unwrap();
        let mut c = idx.cursor(term).unwrap();
        assert_eq!(c.len(), docs.len());
        for (i, &d) in docs.iter().enumerate() {
            assert_eq!(c.doc(), Some(d));
            assert_eq!(c.tf(), tfs[i]);
            assert_eq!(c.remaining(), docs.len() - i);
            c.advance();
        }
        assert!(c.is_exhausted());
        assert_eq!(c.doc(), None);
        assert_eq!(c.tf(), 0);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn cursor_seek_matches_linear_scan() {
        let idx = index();
        for term in idx.terms_by_df_asc() {
            let (docs, _) = idx.postings(term).unwrap();
            // Seek to every doc id around each posting and compare with
            // the linear-scan definition: first posting with doc >= target.
            for &target in docs
                .iter()
                .flat_map(|&d| [d.saturating_sub(1), d, d + 1])
                .chain([0, u32::MAX])
                .collect::<Vec<u32>>()
                .iter()
            {
                let mut c = idx.cursor(term).unwrap();
                let skipped = c.seek(target);
                let expect = docs.iter().position(|&d| d >= target);
                assert_eq!(
                    c.doc(),
                    expect.map(|i| docs[i]),
                    "term {term} target {target}"
                );
                assert_eq!(skipped, expect.unwrap_or(docs.len()));
            }
        }
    }

    #[test]
    fn cursor_seek_is_monotone_and_counts_skips() {
        let idx = index();
        let term = *idx.terms_by_df_asc().last().unwrap();
        let (docs, _) = idx.postings(term).unwrap();
        let mut c = idx.cursor(term).unwrap();
        // Seeking backwards (or to the current doc) never moves the cursor.
        c.seek(docs[docs.len() / 2]);
        let here = c.doc();
        assert_eq!(c.seek(0), 0);
        assert_eq!(c.doc(), here);
        // Total skips + scored positions account for the whole run.
        let mut c = idx.cursor(term).unwrap();
        let mut skipped = 0usize;
        let mut visited = 0usize;
        for (i, &d) in docs.iter().enumerate().step_by(3) {
            skipped += c.seek(d);
            assert_eq!(c.doc(), Some(docs[i]));
            visited += 1;
            c.advance();
        }
        skipped += c.remaining();
        assert_eq!(skipped + visited, docs.len());
    }

    #[test]
    fn unknown_term_cursor_is_error() {
        let idx = index();
        assert!(idx.cursor(u32::MAX).is_err());
    }

    #[test]
    fn run_len_equals_df_on_an_unsharded_index() {
        let idx = index();
        for t in 0..idx.vocab_size() as u32 {
            assert_eq!(idx.run_len(t).unwrap(), idx.df(t).unwrap() as usize);
        }
        assert!(idx.run_len(u32::MAX).is_err());
    }

    #[test]
    fn shard_by_docs_keeps_global_catalog_and_partitions_postings() {
        let idx = index();
        let p = 3u32;
        let shards: Vec<InvertedIndex> =
            (0..p).map(|s| idx.shard_by_docs(|d| d % p == s)).collect();
        for shard in &shards {
            // Catalog statistics are global...
            assert_eq!(shard.stats(), idx.stats());
            assert_eq!(shard.num_docs(), idx.num_docs());
            assert_eq!(shard.vocab_size(), idx.vocab_size());
            for t in 0..idx.vocab_size() as u32 {
                assert_eq!(shard.df(t).unwrap(), idx.df(t).unwrap());
                assert_eq!(shard.cf(t).unwrap(), idx.cf(t).unwrap());
                assert_eq!(shard.max_tf(t).unwrap(), idx.max_tf(t).unwrap());
            }
        }
        // ...while the postings partition exactly: per term, concatenating
        // the shard runs in shard order of each doc recovers the full run.
        let mut total = 0usize;
        for shard in &shards {
            total += shard.num_postings();
        }
        assert_eq!(total, idx.num_postings());
        for t in 0..idx.vocab_size() as u32 {
            let (docs, tfs) = idx.postings(t).unwrap();
            let mut rebuilt: Vec<(u32, u32)> = Vec::new();
            for shard in &shards {
                let (d, f) = shard.postings(t).unwrap();
                assert!(d.windows(2).all(|w| w[0] < w[1]), "shard run stays sorted");
                rebuilt.extend(d.iter().copied().zip(f.iter().copied()));
            }
            rebuilt.sort_by_key(|&(d, _)| d);
            let expect: Vec<(u32, u32)> = docs.iter().copied().zip(tfs.iter().copied()).collect();
            assert_eq!(rebuilt, expect, "term {t}");
            // Shard-local run lengths sum to the global df.
            let run_sum: usize = shards.iter().map(|s| s.run_len(t).unwrap()).sum();
            assert_eq!(run_sum, idx.df(t).unwrap() as usize);
        }
    }

    #[test]
    fn multi_way_shard_equals_per_predicate_sharding() {
        let idx = index();
        for p in [1usize, 3, 4] {
            let multi = idx.shard_by_docs_multi(p, |d| d as usize % p);
            assert_eq!(multi.len(), p);
            for (s, shard) in multi.iter().enumerate() {
                let want = idx.shard_by_docs(|d| d as usize % p == s);
                for t in 0..idx.vocab_size() as u32 {
                    assert_eq!(
                        shard.postings(t).unwrap(),
                        want.postings(t).unwrap(),
                        "p={p} shard {s} term {t}"
                    );
                }
                assert_eq!(shard.stats(), want.stats());
                assert_eq!(shard.num_postings(), want.num_postings());
            }
        }
        // Out-of-range assignments clamp to the last shard.
        let clamped = idx.shard_by_docs_multi(2, |_| 99);
        assert_eq!(clamped[0].num_postings(), 0);
        assert_eq!(clamped[1].num_postings(), idx.num_postings());
    }

    #[test]
    fn from_sorted_postings_validates_input() {
        // Unsorted postings rejected.
        assert!(
            InvertedIndex::from_sorted_postings(3, vec![2, 2], &[(1, 0, 1), (0, 0, 1)],).is_err()
        );
        // Term beyond vocab rejected.
        assert!(InvertedIndex::from_sorted_postings(2, vec![1], &[(5, 0, 1)]).is_err());
        // Doc beyond doc_len rejected.
        assert!(InvertedIndex::from_sorted_postings(2, vec![1], &[(0, 3, 1)]).is_err());
        // Empty collection rejected.
        assert!(InvertedIndex::from_sorted_postings(2, vec![], &[]).is_err());
        // A valid minimal index.
        let idx =
            InvertedIndex::from_sorted_postings(2, vec![3, 2], &[(0, 0, 2), (1, 1, 1)]).unwrap();
        assert_eq!(idx.df(0).unwrap(), 1);
        assert_eq!(idx.cf(0).unwrap(), 2);
        assert_eq!(idx.stats().total_tokens, 5);
    }
}
