//! The inverted index: a term-major term–document matrix.
//!
//! Postings are stored in the block-compressed format of
//! [`crate::blocks`] — fixed 128-entry blocks, delta-encoded bit-packed
//! document ids with term frequencies packed alongside, and one contiguous
//! per-block header array — rather than flat `(doc, tf)` arrays. The
//! element-at-a-time paths read it through decode-on-demand cursors
//! ([`PostingCursor`], or the scratch-backed cursor state the DAAT kernel
//! drives directly); set-based consumers stream whole runs with
//! [`InvertedIndex::for_each_posting`] or materialize them with
//! [`InvertedIndex::decode_postings`]. Collection-wide statistics (df, cf,
//! max tf, document lengths) are kept alongside; the ranking models and
//! the fragmentation safety check consume them.

use moa_corpus::Collection;
use moa_storage::{Bat, Column};

use crate::blocks::{BlockListBuilder, BlockPostingList, CursorBuf, CursorPos, TermView};
use crate::error::{IrError, Result};

/// Collection statistics needed by ranking models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionStats {
    /// Number of documents.
    pub num_docs: usize,
    /// Average document length in tokens.
    pub avg_doc_len: f64,
    /// Total tokens in the collection.
    pub total_tokens: u64,
}

/// A term-major inverted index over a document collection.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    stats: CollectionStats,
    doc_len: Vec<u32>,
    df: Vec<u32>,
    cf: Vec<u64>,
    /// Highest within-document tf of each term (upper bound for the safety
    /// check's score-contribution estimates).
    max_tf: Vec<u32>,
    /// Block-compressed posting payloads, term-major.
    blocks: BlockPostingList,
}

impl InvertedIndex {
    /// Build an index from a generated collection.
    pub fn from_collection(collection: &Collection) -> InvertedIndex {
        let triples: Vec<(u32, u32, u32)> = collection
            .postings()
            .iter()
            .map(|p| (p.term, p.doc, p.tf))
            .collect();
        InvertedIndex::from_sorted_postings(
            collection.vocab_size(),
            collection.doc_len().to_vec(),
            &triples,
        )
        .expect("generated collections are non-empty and sorted")
    }

    /// Build an index from `(term, doc, tf)` triples sorted by `(term,
    /// doc)`, with the given vocabulary size and per-document token counts.
    /// Used by [`crate::text::IndexBuilder`] and available for custom
    /// ingestion pipelines. This is the single block-encode point: every
    /// construction path (text ingestion, synthetic collections, document
    /// sharding) funnels through here.
    pub fn from_sorted_postings(
        vocab: usize,
        doc_len: Vec<u32>,
        postings: &[(u32, u32, u32)],
    ) -> Result<InvertedIndex> {
        if doc_len.is_empty() {
            return Err(IrError::InvalidConfig(
                "index needs at least one document".into(),
            ));
        }
        // Strict order: a duplicate (term, doc) pair is malformed input
        // (one posting per term-document cell; builders aggregate tfs),
        // and the delta encoder requires strictly increasing doc ids
        // within a run.
        if postings
            .windows(2)
            .any(|w| (w[0].0, w[0].1) >= (w[1].0, w[1].1))
        {
            return Err(IrError::InvalidConfig(
                "postings must be strictly sorted by (term, doc) with no duplicates".into(),
            ));
        }
        let mut df = vec![0u32; vocab];
        let mut cf = vec![0u64; vocab];
        let mut max_tf = vec![0u32; vocab];
        for &(term, doc, tf) in postings {
            let t = term as usize;
            if t >= vocab {
                return Err(IrError::UnknownTerm(term));
            }
            if doc as usize >= doc_len.len() {
                return Err(IrError::InvalidConfig(format!(
                    "posting references doc {doc} beyond {} documents",
                    doc_len.len()
                )));
            }
            df[t] += 1;
            cf[t] += u64::from(tf);
            max_tf[t] = max_tf[t].max(tf);
        }
        // Encode term by term: `postings` is (term, doc)-sorted, so each
        // term's triples form one doc-ascending run.
        let mut builder = BlockListBuilder::new();
        let mut run_docs: Vec<u32> = Vec::new();
        let mut run_tfs: Vec<u32> = Vec::new();
        let mut i = 0usize;
        for t in 0..vocab as u32 {
            run_docs.clear();
            run_tfs.clear();
            while i < postings.len() && postings[i].0 == t {
                run_docs.push(postings[i].1);
                run_tfs.push(postings[i].2);
                i += 1;
            }
            builder.push_run(&run_docs, &run_tfs);
        }
        let total_tokens: u64 = doc_len.iter().map(|&l| u64::from(l)).sum();
        Ok(InvertedIndex {
            stats: CollectionStats {
                num_docs: doc_len.len(),
                avg_doc_len: total_tokens as f64 / doc_len.len() as f64,
                total_tokens,
            },
            doc_len,
            df,
            cf,
            max_tf,
            blocks: builder.finish(),
        })
    }

    /// Collection statistics.
    pub fn stats(&self) -> CollectionStats {
        self.stats
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.stats.num_docs
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.df.len()
    }

    /// Total number of postings (the data volume unit of the fragmentation
    /// experiments).
    pub fn num_postings(&self) -> usize {
        self.blocks.num_postings()
    }

    /// Document frequency of a term.
    pub fn df(&self, term: u32) -> Result<u32> {
        self.df
            .get(term as usize)
            .copied()
            .ok_or(IrError::UnknownTerm(term))
    }

    /// Collection frequency of a term.
    pub fn cf(&self, term: u32) -> Result<u64> {
        self.cf
            .get(term as usize)
            .copied()
            .ok_or(IrError::UnknownTerm(term))
    }

    /// Highest within-document tf of a term.
    pub fn max_tf(&self, term: u32) -> Result<u32> {
        self.max_tf
            .get(term as usize)
            .copied()
            .ok_or(IrError::UnknownTerm(term))
    }

    /// Length (token count) of a document.
    pub fn doc_len(&self, doc: u32) -> u32 {
        self.doc_len.get(doc as usize).copied().unwrap_or(0)
    }

    /// All document lengths.
    pub fn doc_lens(&self) -> &[u32] {
        &self.doc_len
    }

    /// Length of a term's *resident* posting run. Equals `df` on an index
    /// built from a whole collection; on a document-partition shard
    /// ([`InvertedIndex::shard_by_docs`]) it is the number of postings
    /// physically present in this shard, while `df` stays the collection-
    /// wide catalog statistic. Work estimates (planner pricing, scan
    /// volumes) should use this; ranking-model inputs should use `df`.
    pub fn run_len(&self, term: u32) -> Result<usize> {
        if term as usize >= self.df.len() {
            return Err(IrError::UnknownTerm(term));
        }
        Ok(self.blocks.run_len(term))
    }

    /// The block-compressed posting store — block headers, packed payload,
    /// per-term views. The DAAT kernel and the bound-table builder operate
    /// on it directly.
    pub fn blocks(&self) -> &BlockPostingList {
        &self.blocks
    }

    /// Stream a term's postings in document order through `f(doc, tf)` —
    /// the allocation-free full-run path of the set-at-a-time evaluator
    /// and the table builders.
    pub fn for_each_posting(&self, term: u32, f: impl FnMut(u32, u32)) -> Result<()> {
        if term as usize >= self.df.len() {
            return Err(IrError::UnknownTerm(term));
        }
        self.blocks.for_each(term, f);
        Ok(())
    }

    /// [`InvertedIndex::for_each_posting`] with a breakable callback:
    /// returning `false` from `f` stops the stream mid-run. Returns
    /// whether the run was fully consumed — the deadline-polled term-run
    /// loops of the accumulator evaluator ride on this.
    pub fn for_each_posting_while(
        &self,
        term: u32,
        f: impl FnMut(u32, u32) -> bool,
    ) -> Result<bool> {
        if term as usize >= self.df.len() {
            return Err(IrError::UnknownTerm(term));
        }
        Ok(self.blocks.for_each_while(term, f))
    }

    /// Materialize a term's posting run as owned `(docs, tfs)` vectors.
    /// Pays one decode pass plus two allocations — use
    /// [`InvertedIndex::for_each_posting`] or a cursor on hot paths.
    pub fn decode_postings(&self, term: u32) -> Result<(Vec<u32>, Vec<u32>)> {
        if term as usize >= self.df.len() {
            return Err(IrError::UnknownTerm(term));
        }
        Ok(self.blocks.decode_term(term))
    }

    /// A skippable cursor over a term's posting run, for
    /// document-at-a-time merging with bounds-based pruning
    /// ([`crate::daat::DaatSearcher`]). Owns its decode buffer (one heap
    /// allocation); the DAAT kernel's scratch-pooled path avoids even that
    /// via [`crate::scratch::QueryScratch`].
    pub fn cursor(&self, term: u32) -> Result<PostingCursor<'_>> {
        if term as usize >= self.df.len() {
            return Err(IrError::UnknownTerm(term));
        }
        Ok(PostingCursor::new(self.blocks.view(term)))
    }

    /// Materialize a term's postings as a `(doc → tf)` BAT — the
    /// flattened-Moa view used by the algebra layer.
    pub fn postings_bat(&self, term: u32) -> Result<Bat> {
        let (docs, tfs) = self.decode_postings(term)?;
        Ok(Bat::new(docs, Column::from(tfs)).expect("aligned decode halves have equal length"))
    }

    /// Per-term df table as a dense BAT (term oid → df), for the algebra
    /// and cost layers.
    pub fn df_bat(&self) -> Bat {
        Bat::dense(Column::from(self.df.clone()))
    }

    /// Build a document-partition *shard* of this index: only postings
    /// whose document passes `keep` are retained, while **every catalog
    /// statistic stays global** — `df`, `cf`, `max_tf`, the per-document
    /// lengths, and the collection stats are copied from the full index
    /// unchanged. Ranking-model weights computed on the shard are
    /// therefore bit-identical to the unsharded index (same `f64`
    /// constants, same per-document norms, same document ids), which is
    /// what lets `moa_serve` merge shard-local top-N heaps into the exact
    /// single-engine answer. Shard-local *work* figures come from
    /// [`InvertedIndex::run_len`] and [`InvertedIndex::num_postings`],
    /// which do reflect only the resident postings.
    pub fn shard_by_docs(&self, keep: impl Fn(u32) -> bool) -> InvertedIndex {
        let mut shards = self.shard_by_docs_multi(2, |d| usize::from(!keep(d)));
        shards.swap_remove(0)
    }

    /// Partition this index into `shards` document-partition shards in
    /// **one pass** over the postings: `assign(doc)` names each
    /// document's shard (values ≥ `shards` are clamped to the last).
    /// Each shard re-encodes its resident runs into its own block store;
    /// catalog statistics stay global (see
    /// [`InvertedIndex::shard_by_docs`]).
    pub fn shard_by_docs_multi(
        &self,
        shards: usize,
        assign: impl Fn(u32) -> usize,
    ) -> Vec<InvertedIndex> {
        let p = shards.max(1);
        let vocab = self.vocab_size();
        let mut builders: Vec<BlockListBuilder> = (0..p).map(|_| BlockListBuilder::new()).collect();
        let mut docs: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut tfs: Vec<Vec<u32>> = vec![Vec::new(); p];
        for t in 0..vocab as u32 {
            for s in 0..p {
                docs[s].clear();
                tfs[s].clear();
            }
            self.blocks.for_each(t, |doc, tf| {
                let shard = assign(doc).min(p - 1);
                docs[shard].push(doc);
                tfs[shard].push(tf);
            });
            for s in 0..p {
                builders[s].push_run(&docs[s], &tfs[s]);
            }
        }
        builders
            .into_iter()
            .map(|b| InvertedIndex {
                stats: self.stats,
                doc_len: self.doc_len.clone(),
                df: self.df.clone(),
                cf: self.cf.clone(),
                max_tf: self.max_tf.clone(),
                blocks: b.finish(),
            })
            .collect()
    }

    /// Terms sorted by ascending df (the "most interesting first" order the
    /// fragmentation uses); ties broken by term id. Terms with df = 0 are
    /// excluded.
    pub fn terms_by_df_asc(&self) -> Vec<u32> {
        let mut terms: Vec<u32> = (0..self.df.len() as u32)
            .filter(|&t| self.df[t as usize] > 0)
            .collect();
        terms.sort_by_key(|&t| (self.df[t as usize], t));
        terms
    }
}

/// A forward cursor over one term's block-compressed posting run:
/// decode-on-demand (documents on block entry, term frequencies only when
/// scored) with a `seek` that binary-searches the contiguous block-header
/// array and unpacks a single block — the skip primitive behind the
/// MaxScore-pruned DAAT kernel.
///
/// This standalone form owns its decode buffer (one boxed [`CursorBuf`]).
/// The query kernel's hot path keeps the same state in pooled scratch
/// arrays instead ([`crate::scratch::QueryScratch`]) so steady-state
/// queries allocate nothing; both drive the identical [`TermView`] core.
#[derive(Debug, Clone)]
pub struct PostingCursor<'a> {
    view: TermView<'a>,
    pos: CursorPos,
    buf: Box<CursorBuf>,
}

impl<'a> PostingCursor<'a> {
    fn new(view: TermView<'a>) -> PostingCursor<'a> {
        let mut buf = Box::new(CursorBuf::new());
        let pos = view.start(&mut buf);
        PostingCursor { view, pos, buf }
    }

    /// The current posting's document id, or `None` when exhausted.
    #[inline]
    pub fn doc(&self) -> Option<u32> {
        self.view.doc_at(&self.pos, &self.buf)
    }

    /// The current posting's term frequency (0 when exhausted): served
    /// from the mini-block lookahead buffer, decoding a 16-entry
    /// mini-block on first touch.
    #[inline]
    pub fn tf(&mut self) -> u32 {
        self.view.tf_at(&mut self.pos, &mut self.buf)
    }

    /// Advance to the next posting.
    #[inline]
    pub fn advance(&mut self) {
        self.view.advance(&mut self.pos, &mut self.buf);
    }

    /// The cursor's position within the posting run (0-based; equals
    /// `len()` when exhausted). Block-max pruning divides this by
    /// [`crate::blocks::BLOCK_LEN`] to find the current block.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos.base + self.pos.idx
    }

    /// Index of the current block within the run.
    #[inline]
    pub fn block_index(&self) -> usize {
        self.pos.block
    }

    /// Whether every posting has been consumed.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.position() >= self.view.len()
    }

    /// Postings not yet consumed (including the current one).
    #[inline]
    pub fn remaining(&self) -> usize {
        self.view.len() - self.position().min(self.view.len())
    }

    /// Total postings in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Whether the run has no postings at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// Advance to the first posting with document id ≥ `target`: binary
    /// search over the block headers (`last_doc` fields, one contiguous
    /// array), then one block unpack and an in-block search. Never moves
    /// backwards. Returns the number of postings skipped over (positions
    /// passed without being scored), the pruning work-saved measure.
    pub fn seek(&mut self, target: u32) -> usize {
        self.view.seek(&mut self.pos, &mut self.buf, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_corpus::CollectionConfig;

    fn index() -> InvertedIndex {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        InvertedIndex::from_collection(&c)
    }

    #[test]
    fn stats_are_consistent() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        assert_eq!(idx.num_docs(), c.num_docs());
        assert_eq!(idx.vocab_size(), c.vocab_size());
        assert_eq!(idx.num_postings(), c.num_postings());
        assert_eq!(idx.stats().total_tokens, c.total_tokens());
        let expect_avg = c.total_tokens() as f64 / c.num_docs() as f64;
        assert!((idx.stats().avg_doc_len - expect_avg).abs() < 1e-9);
    }

    #[test]
    fn postings_decode_to_collection() {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = InvertedIndex::from_collection(&c);
        for term in [0u32, 5, 100, 1999] {
            let (docs, tfs) = idx.decode_postings(term).unwrap();
            let expect = c.postings_for_term(term);
            assert_eq!(docs.len(), expect.len());
            for (i, p) in expect.iter().enumerate() {
                assert_eq!(docs[i], p.doc);
                assert_eq!(tfs[i], p.tf);
            }
            // The streaming path yields the identical sequence.
            let mut streamed = Vec::new();
            idx.for_each_posting(term, |d, t| streamed.push((d, t)))
                .unwrap();
            let zipped: Vec<(u32, u32)> = docs.into_iter().zip(tfs).collect();
            assert_eq!(streamed, zipped);
        }
    }

    #[test]
    fn unknown_term_is_error() {
        let idx = index();
        assert!(matches!(
            idx.decode_postings(u32::MAX),
            Err(IrError::UnknownTerm(_))
        ));
        assert!(idx.df(u32::MAX).is_err());
        assert!(idx.cf(u32::MAX).is_err());
        assert!(idx.max_tf(u32::MAX).is_err());
        assert!(idx.for_each_posting(u32::MAX, |_, _| {}).is_err());
    }

    #[test]
    fn max_tf_bounds_all_postings() {
        let idx = index();
        for term in 0..idx.vocab_size() as u32 {
            let (_, tfs) = idx.decode_postings(term).unwrap();
            let observed_max = tfs.iter().copied().max().unwrap_or(0);
            assert_eq!(idx.max_tf(term).unwrap(), observed_max);
        }
    }

    #[test]
    fn block_headers_cover_runs() {
        let idx = index();
        for term in idx.terms_by_df_asc() {
            let (docs, tfs) = idx.decode_postings(term).unwrap();
            let view = idx.blocks().view(term);
            assert_eq!(view.len(), docs.len());
            assert_eq!(
                view.num_blocks(),
                docs.len().div_ceil(crate::blocks::BLOCK_LEN)
            );
            for (b, chunk) in docs.chunks(crate::blocks::BLOCK_LEN).enumerate() {
                let h = view.headers()[b];
                assert_eq!(h.first_doc, chunk[0]);
                assert_eq!(h.last_doc, *chunk.last().unwrap());
                assert_eq!(usize::from(h.len), chunk.len());
                let base = b * crate::blocks::BLOCK_LEN;
                let tf_max = tfs[base..base + chunk.len()].iter().copied().max().unwrap();
                assert_eq!(h.tf_bits, moa_storage::pack::bits_for(tf_max));
            }
        }
    }

    #[test]
    fn postings_bat_roundtrip() {
        let idx = index();
        let term = idx.terms_by_df_asc().pop().unwrap(); // most frequent
        let bat = idx.postings_bat(term).unwrap();
        let (docs, tfs) = idx.decode_postings(term).unwrap();
        assert_eq!(bat.head_oids(), docs);
        assert_eq!(bat.tail().as_u32().unwrap(), tfs);
    }

    #[test]
    fn terms_by_df_ascending_order() {
        let idx = index();
        let terms = idx.terms_by_df_asc();
        assert!(!terms.is_empty());
        for w in terms.windows(2) {
            assert!(idx.df(w[0]).unwrap() <= idx.df(w[1]).unwrap());
        }
        // All listed terms occur.
        assert!(terms.iter().all(|&t| idx.df(t).unwrap() > 0));
    }

    #[test]
    fn doc_len_out_of_range_is_zero() {
        let idx = index();
        assert_eq!(idx.doc_len(u32::MAX), 0);
    }

    #[test]
    fn df_bat_is_dense_over_vocab() {
        let idx = index();
        let bat = idx.df_bat();
        assert_eq!(bat.len(), idx.vocab_size());
        assert!(bat.props().head_dense);
    }

    #[test]
    fn cursor_walks_postings_in_order() {
        let idx = index();
        let term = *idx.terms_by_df_asc().last().unwrap();
        let (docs, tfs) = idx.decode_postings(term).unwrap();
        let mut c = idx.cursor(term).unwrap();
        assert_eq!(c.len(), docs.len());
        for (i, &d) in docs.iter().enumerate() {
            assert_eq!(c.doc(), Some(d));
            assert_eq!(c.tf(), tfs[i]);
            assert_eq!(c.remaining(), docs.len() - i);
            c.advance();
        }
        assert!(c.is_exhausted());
        assert_eq!(c.doc(), None);
        assert_eq!(c.tf(), 0);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn cursor_seek_matches_linear_scan() {
        let idx = index();
        for term in idx.terms_by_df_asc() {
            let (docs, _) = idx.decode_postings(term).unwrap();
            // Seek to every doc id around each posting and compare with
            // the linear-scan definition: first posting with doc >= target.
            for &target in docs
                .iter()
                .flat_map(|&d| [d.saturating_sub(1), d, d + 1])
                .chain([0, u32::MAX])
                .collect::<Vec<u32>>()
                .iter()
            {
                let mut c = idx.cursor(term).unwrap();
                let skipped = c.seek(target);
                let expect = docs.iter().position(|&d| d >= target);
                assert_eq!(
                    c.doc(),
                    expect.map(|i| docs[i]),
                    "term {term} target {target}"
                );
                assert_eq!(skipped, expect.unwrap_or(docs.len()));
            }
        }
    }

    #[test]
    fn cursor_seek_is_monotone_and_counts_skips() {
        let idx = index();
        let term = *idx.terms_by_df_asc().last().unwrap();
        let (docs, _) = idx.decode_postings(term).unwrap();
        let mut c = idx.cursor(term).unwrap();
        // Seeking backwards (or to the current doc) never moves the cursor.
        c.seek(docs[docs.len() / 2]);
        let here = c.doc();
        assert_eq!(c.seek(0), 0);
        assert_eq!(c.doc(), here);
        // Total skips + scored positions account for the whole run.
        let mut c = idx.cursor(term).unwrap();
        let mut skipped = 0usize;
        let mut visited = 0usize;
        for (i, &d) in docs.iter().enumerate().step_by(3) {
            skipped += c.seek(d);
            assert_eq!(c.doc(), Some(docs[i]));
            visited += 1;
            c.advance();
        }
        skipped += c.remaining();
        assert_eq!(skipped + visited, docs.len());
    }

    #[test]
    fn unknown_term_cursor_is_error() {
        let idx = index();
        assert!(idx.cursor(u32::MAX).is_err());
    }

    #[test]
    fn run_len_equals_df_on_an_unsharded_index() {
        let idx = index();
        for t in 0..idx.vocab_size() as u32 {
            assert_eq!(idx.run_len(t).unwrap(), idx.df(t).unwrap() as usize);
        }
        assert!(idx.run_len(u32::MAX).is_err());
    }

    #[test]
    fn shard_by_docs_keeps_global_catalog_and_partitions_postings() {
        let idx = index();
        let p = 3u32;
        let shards: Vec<InvertedIndex> =
            (0..p).map(|s| idx.shard_by_docs(|d| d % p == s)).collect();
        for shard in &shards {
            // Catalog statistics are global...
            assert_eq!(shard.stats(), idx.stats());
            assert_eq!(shard.num_docs(), idx.num_docs());
            assert_eq!(shard.vocab_size(), idx.vocab_size());
            for t in 0..idx.vocab_size() as u32 {
                assert_eq!(shard.df(t).unwrap(), idx.df(t).unwrap());
                assert_eq!(shard.cf(t).unwrap(), idx.cf(t).unwrap());
                assert_eq!(shard.max_tf(t).unwrap(), idx.max_tf(t).unwrap());
            }
        }
        // ...while the postings partition exactly: per term, concatenating
        // the shard runs in shard order of each doc recovers the full run.
        let mut total = 0usize;
        for shard in &shards {
            total += shard.num_postings();
        }
        assert_eq!(total, idx.num_postings());
        for t in 0..idx.vocab_size() as u32 {
            let (docs, tfs) = idx.decode_postings(t).unwrap();
            let mut rebuilt: Vec<(u32, u32)> = Vec::new();
            for shard in &shards {
                let (d, f) = shard.decode_postings(t).unwrap();
                assert!(d.windows(2).all(|w| w[0] < w[1]), "shard run stays sorted");
                rebuilt.extend(d.into_iter().zip(f));
            }
            rebuilt.sort_by_key(|&(d, _)| d);
            let expect: Vec<(u32, u32)> = docs.into_iter().zip(tfs).collect();
            assert_eq!(rebuilt, expect, "term {t}");
            // Shard-local run lengths sum to the global df.
            let run_sum: usize = shards.iter().map(|s| s.run_len(t).unwrap()).sum();
            assert_eq!(run_sum, idx.df(t).unwrap() as usize);
        }
    }

    #[test]
    fn multi_way_shard_equals_per_predicate_sharding() {
        let idx = index();
        for p in [1usize, 3, 4] {
            let multi = idx.shard_by_docs_multi(p, |d| d as usize % p);
            assert_eq!(multi.len(), p);
            for (s, shard) in multi.iter().enumerate() {
                let want = idx.shard_by_docs(|d| d as usize % p == s);
                for t in 0..idx.vocab_size() as u32 {
                    assert_eq!(
                        shard.decode_postings(t).unwrap(),
                        want.decode_postings(t).unwrap(),
                        "p={p} shard {s} term {t}"
                    );
                }
                assert_eq!(shard.stats(), want.stats());
                assert_eq!(shard.num_postings(), want.num_postings());
            }
        }
        // Out-of-range assignments clamp to the last shard.
        let clamped = idx.shard_by_docs_multi(2, |_| 99);
        assert_eq!(clamped[0].num_postings(), 0);
        assert_eq!(clamped[1].num_postings(), idx.num_postings());
    }

    #[test]
    fn from_sorted_postings_validates_input() {
        // Unsorted postings rejected.
        assert!(
            InvertedIndex::from_sorted_postings(3, vec![2, 2], &[(1, 0, 1), (0, 0, 1)],).is_err()
        );
        // Duplicate (term, doc) pairs rejected with a typed error (the
        // delta encoder requires strictly increasing doc ids per run).
        assert!(InvertedIndex::from_sorted_postings(1, vec![2], &[(0, 0, 1), (0, 0, 1)]).is_err());
        // Term beyond vocab rejected.
        assert!(InvertedIndex::from_sorted_postings(2, vec![1], &[(5, 0, 1)]).is_err());
        // Doc beyond doc_len rejected.
        assert!(InvertedIndex::from_sorted_postings(2, vec![1], &[(0, 3, 1)]).is_err());
        // Empty collection rejected.
        assert!(InvertedIndex::from_sorted_postings(2, vec![], &[]).is_err());
        // A valid minimal index.
        let idx =
            InvertedIndex::from_sorted_postings(2, vec![3, 2], &[(0, 0, 2), (1, 1, 1)]).unwrap();
        assert_eq!(idx.df(0).unwrap(), 1);
        assert_eq!(idx.cf(0).unwrap(), 2);
        assert_eq!(idx.stats().total_tokens, 5);
    }

    #[test]
    fn block_storage_is_compact() {
        let idx = index();
        let flat = idx.num_postings() * 8;
        assert!(
            idx.blocks().storage_bytes() < flat,
            "block storage {} >= flat {flat}",
            idx.blocks().storage_bytes()
        );
    }
}
