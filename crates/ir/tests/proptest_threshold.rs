//! Property tests pinning the cross-shard threshold's order-preserving
//! `f64`↔`u64` encoding through the public `SharedThreshold` API.
//!
//! The serving layer folds every shard's running N-th score into one
//! `AtomicU64` via `fetch_max` over an encoded key; soundness of the
//! whole cross-shard pruning protocol rests on that encoding agreeing
//! with the float total order for *every* input the engines can produce —
//! negative scores (log-probability models go negative), signed zeros,
//! and subnormals included. These properties sweep raw bit patterns, far
//! beyond the scores the seeded workloads happen to generate.

use proptest::prelude::*;

use moa_ir::SharedThreshold;

/// Map an arbitrary bit pattern onto a non-NaN `f64` (NaN payloads are
/// redirected to signed infinities so every case stays orderable — the
/// NaN path has its own dedicated property below).
fn orderable(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_nan() {
        if bits & (1 << 63) != 0 {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        }
    } else {
        v
    }
}

/// IEEE-754 total order on non-NaN doubles: by sign, then magnitude,
/// with −0.0 < +0.0 — the order the encoded `fetch_max` must realize.
/// `f64::total_cmp` is the independent std oracle for exactly this order.
fn total_order_max(a: f64, b: f64) -> f64 {
    if a.total_cmp(&b) == std::cmp::Ordering::Less {
        b
    } else {
        a
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Offering two arbitrary non-NaN scores leaves the threshold at
    /// their total-order maximum, bit-exactly — order preservation of
    /// the encoding, observed through `fetch_max`, for negatives, signed
    /// zeros, and subnormals alike.
    #[test]
    fn fetch_max_realizes_the_float_total_order(
        bits_a in 0u64..=u64::MAX,
        bits_b in 0u64..=u64::MAX,
    ) {
        let (a, b) = (orderable(bits_a), orderable(bits_b));
        let t = SharedThreshold::new();
        t.offer(a);
        t.offer(b);
        let want = total_order_max(a, b);
        prop_assert_eq!(
            t.get().to_bits(),
            want.to_bits(),
            "offer({:e}), offer({:e}) settled at {:e}",
            a,
            b,
            t.get()
        );
        // Offer order must not matter.
        let u = SharedThreshold::new();
        u.offer(b);
        u.offer(a);
        prop_assert_eq!(u.get().to_bits(), want.to_bits());
    }

    /// A single offer round-trips bit-exactly (the decode really inverts
    /// the encode): whatever score a shard publishes is exactly the bound
    /// every other shard reads, including the sign of zero and subnormal
    /// payloads.
    #[test]
    fn published_scores_round_trip_bit_exactly(bits in 0u64..=u64::MAX) {
        let v = orderable(bits);
        let t = SharedThreshold::new();
        t.offer(v);
        prop_assert_eq!(t.get().to_bits(), v.to_bits(), "offer({:e})", v);
    }

    /// The bound is monotone under arbitrary offer sequences: it always
    /// equals the running total-order maximum and never moves backwards.
    #[test]
    fn threshold_is_the_running_maximum(
        seq in proptest::collection::vec(0u64..=u64::MAX, 1..24),
    ) {
        let t = SharedThreshold::new();
        let mut running = f64::NEG_INFINITY;
        for bits in seq {
            let v = orderable(bits);
            t.offer(v);
            running = total_order_max(running, v);
            prop_assert_eq!(
                t.get().to_bits(),
                running.to_bits(),
                "after offer({:e})",
                v
            );
        }
    }

    /// NaN payloads of either sign are ignored wherever they land in the
    /// offer sequence: the threshold stays exactly where the non-NaN
    /// offers put it (the encoding would otherwise rank a positive NaN
    /// above +∞ and freeze the gate shut).
    #[test]
    fn nan_payloads_never_move_the_threshold(
        payload in 1u64..(1u64 << 52),
        sign in 0u64..=1,
        real in 0u64..=u64::MAX,
    ) {
        let nan = f64::from_bits((0x7FFu64 << 52) | payload | (sign << 63));
        prop_assert!(nan.is_nan());
        let v = orderable(real);
        let t = SharedThreshold::new();
        t.offer(nan);
        prop_assert_eq!(t.get().to_bits(), f64::NEG_INFINITY.to_bits());
        t.offer(v);
        t.offer(nan);
        prop_assert_eq!(t.get().to_bits(), v.to_bits(), "offer({:e})", v);
    }
}
