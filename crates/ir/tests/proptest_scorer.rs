//! Property tests pinning the precomputed scoring kernel to the
//! reference `RankingModel::term_weight` path.
//!
//! The query kernels (set-at-a-time, DAAT, fragmented scan) all score
//! through `TermScorer` constants and the `ScoreKernel` norm table; the
//! differential oracle relies on those weights agreeing with the naive
//! formula to the last bit. These properties sweep the parameter space
//! far beyond the seeded workloads.

use proptest::prelude::*;

use moa_ir::blocks::MINI_LEN;
use moa_ir::{CollectionStats, InvertedIndex, RankingModel, ScoreBounds, ScoreKernel, TermScorer};

fn models_for(lambda: f64, k1: f64, b: f64) -> Vec<RankingModel> {
    vec![
        RankingModel::TfIdf,
        RankingModel::HiemstraLm { lambda },
        RankingModel::Bm25 { k1, b },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `TermScorer::weight` with the model's doc norm reproduces
    /// `term_weight` within 1e-12 (in fact bit-exactly, since
    /// `term_weight` delegates to the same floating-point path).
    #[test]
    fn term_scorer_matches_term_weight(
        tf in 0u32..500,
        df in 0u32..50_000,
        cf_extra in 0u64..100_000,
        doc_len in 0u32..50_000,
        num_docs in 1usize..1_000_000,
        avg_doc_len in 1.0f64..10_000.0,
        total_tokens in 1u64..1_000_000_000,
        lambda in 0.0f64..1.0,
        k1 in 0.1f64..3.0,
        b in 0.0f64..1.0,
    ) {
        let stats = CollectionStats { num_docs, avg_doc_len, total_tokens };
        let cf = u64::from(df) + cf_extra;
        for model in models_for(lambda, k1, b) {
            let scorer = TermScorer::new(model, df, cf, &stats);
            let got = scorer.weight(tf, model.doc_norm(doc_len, &stats));
            let want = model.term_weight(tf, df, cf, doc_len, &stats);
            prop_assert!(got.is_finite() && want.is_finite(), "{model:?}: non-finite");
            prop_assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "{model:?} (tf={tf}, df={df}, cf={cf}, dl={doc_len}): {got} vs {want}"
            );
            prop_assert_eq!(got.to_bits(), want.to_bits(), "{:?}: not bit-exact", model);
        }
    }

    /// On a randomly built index the kernel's cached norm table and the
    /// bounds tables agree with per-posting `term_weight`, and every
    /// bound is sound.
    #[test]
    fn kernel_and_bounds_match_term_weight_on_random_indexes(
        num_docs in 1usize..40,
        vocab in 1usize..20,
        density in 1usize..8,
        seed in 0u64..10_000,
        lambda in 0.05f64..0.95,
    ) {
        // Deterministic pseudo-random postings from the seed (xorshift).
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let doc_len: Vec<u32> = (0..num_docs).map(|_| (next() % 500) as u32 + 1).collect();
        let mut postings = Vec::new();
        for t in 0..vocab as u32 {
            for d in 0..num_docs as u32 {
                if next() % 8 < density as u64 {
                    postings.push((t, d, (next() % 9) as u32 + 1));
                }
            }
        }
        let index = InvertedIndex::from_sorted_postings(vocab, doc_len, &postings).unwrap();
        let stats = index.stats();
        for model in models_for(lambda, 1.2, 0.75) {
            let kernel = ScoreKernel::new(model, &index);
            let bounds = ScoreBounds::new(&kernel, &index);
            for term in 0..vocab as u32 {
                let df = index.df(term).unwrap();
                let cf = index.cf(term).unwrap();
                let scorer = kernel.term_scorer(df, cf);
                let (docs, tfs) = index.decode_postings(term).unwrap();
                let mut observed_max = 0.0f64;
                for (i, &doc) in docs.iter().enumerate() {
                    let got = kernel.weight(&scorer, tfs[i], doc);
                    let want = model.term_weight(tfs[i], df, cf, index.doc_len(doc), &stats);
                    prop_assert_eq!(got.to_bits(), want.to_bits());
                    observed_max = observed_max.max(got);
                }
                prop_assert_eq!(
                    bounds.term_max_weight(term).to_bits(),
                    observed_max.to_bits()
                );
                // Block bounds cover their postings and share the storage
                // blocks' horizons; the quantized mini-block nibbles are
                // sound per 16-posting mini-block (round-up quantization:
                // the dequantized nibble is >= the exact mini maximum)
                // and never exceed the exact block maximum.
                let bb = bounds.term_blocks(term);
                for (bi, chunk) in docs.chunks(ScoreBounds::BLOCK_POSTINGS).enumerate() {
                    prop_assert_eq!(bb[bi].last_doc, *chunk.last().unwrap());
                    let mut mini_exact = [0.0f64; ScoreBounds::BLOCK_POSTINGS / MINI_LEN];
                    for (i, &doc) in chunk.iter().enumerate() {
                        let w = kernel.weight(
                            &scorer,
                            tfs[bi * ScoreBounds::BLOCK_POSTINGS + i],
                            doc,
                        );
                        prop_assert!(w <= bb[bi].max_score);
                        prop_assert!(
                            w <= bb[bi].mini_bound(i),
                            "posting weight {} above its mini-block bound {}",
                            w,
                            bb[bi].mini_bound(i)
                        );
                        mini_exact[i / MINI_LEN] = mini_exact[i / MINI_LEN].max(w);
                    }
                    for (m, &exact) in mini_exact.iter().enumerate() {
                        let q = bb[bi].mini_bound(m * MINI_LEN);
                        prop_assert!(
                            q >= exact,
                            "quantized mini bound {q} below exact mini max {exact}"
                        );
                        prop_assert!(q <= bb[bi].max_score);
                    }
                }
            }
        }
    }
}
