//! Property tests pinning the block-compressed posting storage to the
//! flat layout, bit for bit.
//!
//! The whole PR rests on the encoding being lossless: the differential
//! oracle can only stay bit-identical if delta + bit-pack encode→decode
//! reproduces every `(doc, tf)` pair exactly. These properties sweep
//! arbitrary sorted posting lists — including runs of equal gaps (the
//! width-0 delta case), all-equal tfs, single-posting runs, and final
//! partial blocks — through build → decode, through the streaming path,
//! and through cursor walks and seeks.

use proptest::prelude::*;

use moa_ir::blocks::{BlockListBuilder, CursorBuf, BLOCK_LEN};

/// Deterministic pseudo-random sorted posting list from compact knobs:
/// `n` postings, gaps in [1, max_gap] (max_gap = 1 forces consecutive
/// docs → width-0 delta blocks), tfs in [1, max_tf] (max_tf = 1 forces
/// width-0... 1-bit tf blocks).
fn make_run(n: usize, max_gap: u32, max_tf: u32, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut doc = (next() % 1000) as u32;
    let mut docs = Vec::with_capacity(n);
    let mut tfs = Vec::with_capacity(n);
    for _ in 0..n {
        docs.push(doc);
        tfs.push((next() % u64::from(max_tf)) as u32 + 1);
        doc = doc + 1 + (next() % u64::from(max_gap)) as u32;
    }
    (docs, tfs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encode→decode round-trips arbitrary sorted runs exactly — the flat
    /// layout is recovered bit for bit, through both the materializing
    /// and the streaming decoder.
    #[test]
    fn encode_decode_roundtrips_exactly(
        n in 0usize..900,
        max_gap in 1u32..5_000,
        max_tf in 1u32..300,
        seed in 0u64..100_000,
    ) {
        let (docs, tfs) = make_run(n, max_gap, max_tf, seed);
        let mut b = BlockListBuilder::new();
        b.push_run(&docs, &tfs);
        let list = b.finish();
        prop_assert_eq!(list.num_postings(), n);
        prop_assert_eq!(list.run_len(0), n);
        let (got_docs, got_tfs) = list.decode_term(0);
        prop_assert_eq!(&got_docs, &docs);
        prop_assert_eq!(&got_tfs, &tfs);
        let mut streamed = Vec::with_capacity(n);
        list.for_each(0, |d, t| streamed.push((d, t)));
        let flat: Vec<(u32, u32)> = docs.iter().copied().zip(tfs.iter().copied()).collect();
        prop_assert_eq!(streamed, flat);
        // Headers tile the run: every block's len is BLOCK_LEN except a
        // final partial block, and first/last bracket the block exactly.
        let view = list.view(0);
        prop_assert_eq!(view.num_blocks(), n.div_ceil(BLOCK_LEN));
        for (bi, h) in view.headers().iter().enumerate() {
            let lo = bi * BLOCK_LEN;
            let hi = (lo + BLOCK_LEN).min(n);
            prop_assert_eq!(usize::from(h.len), hi - lo);
            prop_assert_eq!(h.first_doc, docs[lo]);
            prop_assert_eq!(h.last_doc, docs[hi - 1]);
            let want_tf = tfs[lo..hi].iter().copied().max().unwrap_or(0);
            prop_assert_eq!(h.tf_bits, moa_storage::pack::bits_for(want_tf));
        }
    }

    /// Equal-gap runs (consecutive docs) produce width-0 delta blocks and
    /// still round-trip; all-ones tfs pack at 1 bit.
    #[test]
    fn degenerate_widths_roundtrip(
        n in 1usize..600,
        start in 0u32..1_000_000,
        gap in 1u32..4,
    ) {
        let docs: Vec<u32> = (0..n as u32).map(|i| start + i * gap).collect();
        let tfs = vec![1u32; n];
        let mut b = BlockListBuilder::new();
        b.push_run(&docs, &tfs);
        let list = b.finish();
        let view = list.view(0);
        for h in view.headers() {
            if gap == 1 {
                prop_assert_eq!(h.doc_bits, 0, "consecutive docs need no delta bits");
            }
            prop_assert_eq!(h.tf_bits, 1);
        }
        prop_assert_eq!(list.decode_term(0), (docs, tfs));
    }

    /// Cursor walks and seeks agree with the flat layout's linear-scan
    /// semantics on arbitrary runs.
    #[test]
    fn cursor_semantics_match_flat_linear_scan(
        n in 1usize..700,
        max_gap in 1u32..600,
        max_tf in 1u32..50,
        seed in 0u64..100_000,
        stride in 1usize..40,
    ) {
        let (docs, tfs) = make_run(n, max_gap, max_tf, seed);
        let mut b = BlockListBuilder::new();
        b.push_run(&docs, &tfs);
        let list = b.finish();
        let view = list.view(0);

        // Full walk: every (doc, tf) in order.
        let mut buf = CursorBuf::new();
        let mut pos = view.start(&mut buf);
        for i in 0..n {
            prop_assert_eq!(view.doc_at(&pos, &buf), Some(docs[i]));
            prop_assert_eq!(view.tf_at(&mut pos, &mut buf), tfs[i]);
            view.advance(&mut pos, &mut buf);
        }
        prop_assert_eq!(view.doc_at(&pos, &buf), None);

        // Strided seeks: first posting >= target, with an exact skip
        // ledger (skipped + visited = run length).
        let mut buf = CursorBuf::new();
        let mut pos = view.start(&mut buf);
        let mut skipped = 0usize;
        let mut visited = 0usize;
        for (i, &d) in docs.iter().enumerate().step_by(stride) {
            skipped += view.seek(&mut pos, &mut buf, d);
            prop_assert_eq!(view.doc_at(&pos, &buf), Some(docs[i]));
            prop_assert_eq!(view.tf_at(&mut pos, &mut buf), tfs[i]);
            visited += 1;
            view.advance(&mut pos, &mut buf);
        }
        skipped += n - (pos.base + pos.idx).min(n);
        prop_assert_eq!(skipped + visited, n);

        // Seeking past the last doc exhausts; seeking to 0 from the start
        // is a no-op.
        let mut buf = CursorBuf::new();
        let mut pos = view.start(&mut buf);
        prop_assert_eq!(view.seek(&mut pos, &mut buf, 0), 0);
        let last = *docs.last().expect("non-empty run");
        if last < u32::MAX {
            view.seek(&mut pos, &mut buf, last + 1);
            prop_assert_eq!(view.doc_at(&pos, &buf), None);
        }
    }

    /// Multi-term lists keep runs independent: pushing several runs and
    /// decoding each recovers each flat input, and empty runs in between
    /// stay empty.
    #[test]
    fn multi_term_lists_roundtrip(
        n1 in 0usize..300,
        n2 in 0usize..300,
        seed in 0u64..100_000,
    ) {
        let (d1, t1) = make_run(n1, 700, 9, seed);
        let (d2, t2) = make_run(n2, 3, 2, seed.wrapping_add(1));
        let mut b = BlockListBuilder::new();
        b.push_run(&d1, &t1);
        b.push_run(&[], &[]);
        b.push_run(&d2, &t2);
        let list = b.finish();
        prop_assert_eq!(list.num_terms(), 3);
        prop_assert_eq!(list.num_postings(), n1 + n2);
        prop_assert_eq!(list.decode_term(0), (d1, t1));
        prop_assert_eq!(list.run_len(1), 0);
        prop_assert_eq!(list.decode_term(2), (d2, t2));
    }
}
