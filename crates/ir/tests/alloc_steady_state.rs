//! Counting-allocator proof of the zero-allocation steady state.
//!
//! The block-layout PR's contract: once a [`QueryScratch`] has served one
//! query of a given shape, every further query through
//! [`DaatSearcher::search_into`] / [`DaatSearcher::search_exhaustive_into`]
//! performs **zero heap allocations** — cursor decode buffers, bound work
//! lists, the top-N heap, and the result vector are all reused arena
//! state. A `#[global_allocator]` wrapper counts every allocation and
//! reallocation; the steady-state phase must leave the counter untouched.
//!
//! (This is an integration test so the counting allocator owns the whole
//! test binary; unit tests in the crate keep the system allocator.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use moa_corpus::{generate_queries, Collection, CollectionConfig, DfBias, QueryConfig};
use moa_ir::{BoundGate, DaatSearcher, InvertedIndex, QueryScratch, RankingModel};

struct CountingAlloc;

// Per-thread counter: the libtest harness thread allocates (output
// buffering) concurrently with the test thread, so a process-global
// counter would flake. The const initializer keeps thread-local access
// itself allocation-free.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

#[test]
fn steady_state_queries_allocate_nothing() {
    let collection = Collection::generate(CollectionConfig::tiny()).expect("valid preset");
    let index = InvertedIndex::from_collection(&collection);
    let daat = DaatSearcher::new(&index, RankingModel::default());
    let gate = BoundGate::none();
    let mut scratch = QueryScratch::new();

    // A mixed workload: several widths, both frequent and rare terms.
    let queries = generate_queries(
        &collection,
        &QueryConfig {
            num_queries: 12,
            bias: DfBias::TrecLike { high_df_mix: 0.5 },
            seed: 0xA110C,
            ..QueryConfig::default()
        },
    )
    .expect("valid workload");
    let n = 10usize;

    // Warm-up: first contact grows every arena buffer to the workload's
    // high-water mark and triggers the one-time lazy ScoreBounds build.
    let mut expected: Vec<Vec<(u32, f64)>> = Vec::new();
    for q in &queries {
        let _ = daat
            .search_into(&q.terms, n, &gate, &mut scratch)
            .expect("valid query");
        let _ = daat
            .search_exhaustive_into(&q.terms, n, &mut scratch)
            .expect("valid query");
        expected.push(scratch.out.clone());
    }

    // Steady state: the same workload, five more rounds, pruned and
    // exhaustive — not a single allocation (or reallocation) allowed.
    let before = allocations();
    let mut checksum = 0usize;
    for _ in 0..5 {
        for q in &queries {
            let stats = daat
                .search_into(&q.terms, n, &gate, &mut scratch)
                .expect("valid query");
            checksum += stats.postings_scanned + scratch.out.len();
            let stats = daat
                .search_exhaustive_into(&q.terms, n, &mut scratch)
                .expect("valid query");
            checksum += stats.postings_scanned + scratch.out.len();
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state queries performed {} heap allocations",
        after - before
    );
    assert!(checksum > 0, "the measured loop really executed queries");
    // Telemetry was live the whole time: the per-query phase aggregate
    // (gate pass / decode / score / merge stage clocks) recorded inside
    // the measured loop, and still nothing allocated — the observability
    // layer rides the same arena contract.
    assert!(
        !scratch.phases().is_empty(),
        "stage clocks must have recorded during the steady-state loop"
    );

    // And the arena-path answers still match the warm-up round's results
    // (reuse never changes an answer).
    for (i, q) in queries.iter().enumerate() {
        let _ = daat
            .search_exhaustive_into(&q.terms, n, &mut scratch)
            .expect("valid query");
        assert_eq!(scratch.out, expected[i], "query {i} diverged after reuse");
    }
}

#[test]
fn shrinking_and_regrowing_queries_stay_allocation_free_once_seen() {
    let collection = Collection::generate(CollectionConfig::tiny()).expect("valid preset");
    let index = InvertedIndex::from_collection(&collection);
    let daat = DaatSearcher::new(&index, RankingModel::Bm25 { k1: 1.2, b: 0.75 });
    let gate = BoundGate::none();
    let mut scratch = QueryScratch::new();
    let terms = index.terms_by_df_asc();
    let widest: Vec<u32> = terms.iter().rev().take(6).copied().collect();

    // Warm with the widest shape and the largest N the test will use.
    let _ = daat
        .search_into(&widest, 20, &gate, &mut scratch)
        .expect("valid query");

    // Narrower queries and smaller N fit inside the warmed arena.
    let before = allocations();
    for w in 1..=widest.len() {
        for n in [1usize, 5, 20] {
            let _ = daat
                .search_into(&widest[..w], n, &gate, &mut scratch)
                .expect("valid query");
        }
    }
    assert_eq!(allocations() - before, 0, "narrower shapes reallocated");
}
