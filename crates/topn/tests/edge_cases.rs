//! Edge-case coverage for the bounded heap and the STOP AFTER policies:
//! N = 0, N ≥ input length, duplicate scores, and tie-breaking stability.
//!
//! Tie-breaking contract, shared by every algorithm in the crate: score
//! descending, then object id ascending. These tests pin it explicitly so a
//! future "optimization" cannot silently reorder equal-scored results.

use moa_topn::{aggressive, conservative, scan_stop, topn, topn_full_sort, TopNHeap};

/// All scores equal — result order must be exactly ascending object ids.
fn all_ties(len: u32) -> Vec<(u32, f64)> {
    // Feed ids in a scrambled order so stability can't come for free.
    (0..len).map(|i| ((i * 7 + 3) % len, 0.5)).collect()
}

// ---------------------------------------------------------------------------
// heap.rs
// ---------------------------------------------------------------------------

#[test]
fn heap_n_zero_returns_empty_for_any_input() {
    assert!(topn(Vec::new(), 0).is_empty());
    assert!(topn(all_ties(100), 0).is_empty());
    assert!(topn_full_sort(all_ties(100), 0).is_empty());
    let mut h = TopNHeap::new(0);
    h.push(1, 1.0);
    h.push(2, f64::NEG_INFINITY);
    assert!(h.is_empty());
    assert_eq!(h.len(), 0);
    assert_eq!(h.threshold(), None);
    assert_eq!(h.pushes(), 2);
    assert!(h.into_sorted_vec().is_empty());
}

#[test]
fn heap_n_at_and_beyond_input_length_returns_everything_sorted() {
    let input: Vec<(u32, f64)> = vec![(4, 0.1), (2, 0.9), (0, 0.5), (3, 0.9), (1, 0.0)];
    let want = vec![(2, 0.9), (3, 0.9), (0, 0.5), (4, 0.1), (1, 0.0)];
    for n in [input.len(), input.len() + 1, 1000] {
        assert_eq!(topn(input.clone(), n), want, "n={n}");
        assert_eq!(topn_full_sort(input.clone(), n), want, "n={n}");
    }
}

#[test]
fn heap_n_zero_on_empty_input() {
    assert!(topn(Vec::new(), 0).is_empty());
    assert!(topn_full_sort(Vec::new(), 0).is_empty());
    assert!(topn(Vec::new(), 5).is_empty());
}

#[test]
fn duplicate_scores_tie_break_by_ascending_object_id() {
    for len in [1u32, 2, 5, 17, 64] {
        for n in [
            1usize,
            2,
            (len / 2) as usize,
            len as usize,
            len as usize + 3,
        ] {
            let got = topn(all_ties(len), n);
            let want: Vec<(u32, f64)> = (0..(n.min(len as usize)) as u32)
                .map(|i| (i, 0.5))
                .collect();
            assert_eq!(got, want, "len={len} n={n}");
            assert_eq!(
                topn_full_sort(all_ties(len), n),
                want,
                "full sort len={len} n={n}"
            );
        }
    }
}

#[test]
fn tie_breaking_is_stable_under_eviction_pressure() {
    // Two score classes; the heap must keep the *smallest ids* of the upper
    // class even when larger ids of the same score arrive first and the heap
    // churns through evictions of the lower class.
    let mut input: Vec<(u32, f64)> = Vec::new();
    for id in (50..100u32).rev() {
        input.push((id, 0.9)); // upper class, descending ids first
    }
    for id in 0..50u32 {
        input.push((id, 0.1)); // lower class
    }
    let got = topn(input.clone(), 10);
    let want: Vec<(u32, f64)> = (50..60).map(|i| (i, 0.9)).collect();
    assert_eq!(got, want);
    assert_eq!(topn_full_sort(input, 10), want);
}

#[test]
fn heap_threshold_tracks_worst_retained_with_duplicates() {
    let mut h = TopNHeap::new(3);
    for (obj, score) in [(0u32, 0.5), (1, 0.5), (2, 0.5), (3, 0.5)] {
        h.push(obj, score);
    }
    assert!(h.is_full());
    assert_eq!(h.threshold(), Some(0.5));
    // With all-equal scores, the three *smallest ids* are retained.
    assert_eq!(h.into_sorted_vec(), vec![(0, 0.5), (1, 0.5), (2, 0.5)]);
}

// ---------------------------------------------------------------------------
// stop_after.rs
// ---------------------------------------------------------------------------

#[test]
fn stop_after_n_zero_processes_predictably() {
    let input = all_ties(40);
    let cons = conservative(&input, 0, |_| true);
    assert!(cons.items.is_empty());
    // Conservative has no stop to exploit: it still filters everything.
    assert_eq!(cons.tuples_processed, input.len());
    let aggr = aggressive(&input, 0, 0.5, 1.0, |_| true);
    assert!(aggr.items.is_empty());
    // Aggressive short-circuits: no predicate work at all.
    assert_eq!(aggr.tuples_processed, 0);
    assert_eq!(aggr.restarts, 0);
    assert!(scan_stop(&input, 0).items.is_empty());
}

#[test]
fn stop_after_n_at_least_input_length_returns_all_survivors() {
    let input: Vec<(u32, f64)> = (0..30u32).map(|i| (i, f64::from(i % 7))).collect();
    let pred = |obj: u32| obj.is_multiple_of(2);
    let mut want: Vec<(u32, f64)> = input.iter().copied().filter(|&(o, _)| pred(o)).collect();
    want.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for n in [input.len(), input.len() + 25] {
        let cons = conservative(&input, n, pred);
        assert_eq!(cons.items, want, "conservative n={n}");
        let aggr = aggressive(&input, n, 0.5, 1.0, pred);
        assert_eq!(aggr.items, want, "aggressive n={n}");
        // Asking for ≥ everything forces the aggressive policy through the
        // whole input, restarts included.
        assert_eq!(aggr.tuples_processed, input.len());
    }
}

#[test]
fn stop_after_duplicate_scores_are_tie_stable_across_policies() {
    let input = all_ties(60);
    let pred = |obj: u32| !obj.is_multiple_of(3);
    let cons = conservative(&input, 12, pred);
    // Smallest surviving ids, ascending, all with the tied score.
    let want: Vec<(u32, f64)> = (0..60u32)
        .filter(|o| o % 3 != 0)
        .take(12)
        .map(|o| (o, 0.5))
        .collect();
    assert_eq!(cons.items, want);
    // A bad estimate changes work, never results or their order.
    for est in [0.01f64, 0.66, 1.0] {
        let aggr = aggressive(&input, 12, est, 1.0, pred);
        assert_eq!(aggr.items, want, "est={est}");
    }
}

#[test]
fn stop_after_empty_input_everywhere() {
    assert!(conservative(&[], 5, |_| true).items.is_empty());
    let aggr = aggressive(&[], 5, 0.5, 1.0, |_| true);
    assert!(aggr.items.is_empty());
    assert_eq!(aggr.tuples_processed, 0);
    assert!(scan_stop(&[], 5).items.is_empty());
}

#[test]
fn scan_stop_edge_lengths() {
    let sorted: Vec<(u32, f64)> = (0..10u32).map(|i| (i, 1.0 - f64::from(i) / 10.0)).collect();
    assert!(scan_stop(&sorted, 0).items.is_empty());
    let exact = scan_stop(&sorted, 10);
    assert_eq!(exact.items, sorted);
    assert_eq!(exact.tuples_processed, 10);
    let beyond = scan_stop(&sorted, 11);
    assert_eq!(beyond.items, sorted);
    assert_eq!(beyond.tuples_processed, 10);
}
