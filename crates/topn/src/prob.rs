//! Probabilistic top-N optimization (Donjerkovic & Ramakrishnan, 1999).
//!
//! Instead of a hard guarantee, pick a score cutoff `c` from a histogram so
//! that *with high confidence* at least N tuples score ≥ c; evaluate the
//! cheap filter `score ≥ c` first, and restart with a relaxed cutoff if too
//! few survive. The expected total cost trades the (cheap) first pass
//! against the (expensive) restart probability — the knob is the confidence
//! level, and the experiment harness sweeps it to reproduce the interior
//! cost minimum of the original paper.

use moa_storage::stats::EquiWidthHistogram;

use crate::heap::topn;

/// Outcome of a probabilistic top-N execution.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct ProbTopNReport {
    /// The top-n `(object, score)` pairs, best first.
    pub items: Vec<(u32, f64)>,
    /// The cutoff used on the first attempt.
    pub initial_cutoff: f64,
    /// Tuples that survived the first cutoff.
    pub first_pass_survivors: usize,
    /// Number of restarts (0 = the optimistic first pass sufficed).
    pub restarts: usize,
    /// Total tuples scanned across all passes (each pass rescans the
    /// input, as a restarted query plan would).
    pub tuples_scanned: usize,
}

/// Error type for probabilistic top-N.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbError {
    /// Confidence must lie strictly between 0 and 1.
    InvalidConfidence,
}

impl std::fmt::Display for ProbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbError::InvalidConfidence => write!(f, "confidence must be in (0, 1)"),
        }
    }
}

impl std::error::Error for ProbError {}

/// Approximate standard-normal quantile (Beasley–Springer–Moro-ish rational
/// approximation; adequate for confidence levels in [0.5, 0.999]).
fn normal_quantile(p: f64) -> f64 {
    // Abramowitz & Stegun 26.2.23.
    let p = p.clamp(1e-9, 1.0 - 1e-9);
    let (sign, p) = if p < 0.5 { (-1.0, p) } else { (1.0, 1.0 - p) };
    let t = (-2.0 * p.ln()).sqrt();
    let num = 2.30753 + 0.27061 * t;
    let den = 1.0 + 0.99229 * t + 0.04481 * t * t;
    sign * (t - num / den)
}

/// Run probabilistic top-N over `(object, score)` tuples.
///
/// `histogram` summarizes the score distribution (in a real system it comes
/// from the catalog; it may be stale or built from a sample). `confidence`
/// is the target probability that the first pass yields ≥ `n` survivors.
pub fn prob_topn(
    input: &[(u32, f64)],
    n: usize,
    histogram: &EquiWidthHistogram,
    confidence: f64,
) -> Result<ProbTopNReport, ProbError> {
    if !(0.0 < confidence && confidence < 1.0) {
        return Err(ProbError::InvalidConfidence);
    }
    if n == 0 || input.is_empty() {
        return Ok(ProbTopNReport {
            items: Vec::new(),
            initial_cutoff: f64::NEG_INFINITY,
            first_pass_survivors: 0,
            restarts: 0,
            tuples_scanned: 0,
        });
    }

    // Inflate the survivor target by a normal margin: ask the histogram for
    // a cutoff expected to pass n + z·√n tuples.
    let z = normal_quantile(confidence);
    let target = (n as f64 + z * (n as f64).sqrt()).ceil().max(n as f64) as usize;
    let mut cutoff = histogram.cutoff_for_at_least(target);
    let initial_cutoff = cutoff;

    let mut restarts = 0usize;
    let mut tuples_scanned = 0usize;
    let mut first_pass_survivors = 0usize;

    loop {
        let mut survivors: Vec<(u32, f64)> = Vec::new();
        for &(obj, score) in input {
            tuples_scanned += 1;
            if score >= cutoff {
                survivors.push((obj, score));
            }
        }
        if restarts == 0 {
            first_pass_survivors = survivors.len();
        }
        if survivors.len() >= n || cutoff == f64::NEG_INFINITY {
            return Ok(ProbTopNReport {
                items: topn(survivors, n),
                initial_cutoff,
                first_pass_survivors,
                restarts,
                tuples_scanned,
            });
        }
        // Restart with a relaxed cutoff: quadruple the target; give up on
        // cutoffs once the target exceeds the population.
        restarts += 1;
        let new_target = target.saturating_mul(4usize.saturating_pow(restarts as u32));
        cutoff = if (new_target as u64) >= histogram.total() {
            f64::NEG_INFINITY
        } else {
            histogram.cutoff_for_at_least(new_target)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(n: usize) -> Vec<(u32, f64)> {
        // Deterministic pseudo-random scores in [0, 1000).
        (0..n as u32)
            .map(|i| (i, f64::from((i.wrapping_mul(2654435761)) % 1000)))
            .collect()
    }

    fn hist(input: &[(u32, f64)]) -> EquiWidthHistogram {
        let values: Vec<f64> = input.iter().map(|&(_, s)| s).collect();
        EquiWidthHistogram::build(&values, 50).unwrap()
    }

    #[test]
    fn results_match_naive_topn() {
        let inp = scored(5_000);
        let h = hist(&inp);
        for n in [1usize, 10, 100] {
            let r = prob_topn(&inp, n, &h, 0.95).unwrap();
            let naive = topn(inp.clone(), n);
            assert_eq!(r.items, naive, "n={n}");
        }
    }

    #[test]
    fn high_confidence_rarely_restarts() {
        let inp = scored(10_000);
        let h = hist(&inp);
        let r = prob_topn(&inp, 50, &h, 0.99).unwrap();
        assert_eq!(r.restarts, 0);
        // The cutoff did real filtering: survivors far below the input size.
        assert!(r.first_pass_survivors < inp.len() / 4);
    }

    #[test]
    fn cutoff_decreases_with_confidence() {
        let inp = scored(10_000);
        let h = hist(&inp);
        let lo = prob_topn(&inp, 50, &h, 0.55).unwrap();
        let hi = prob_topn(&inp, 50, &h, 0.999).unwrap();
        // Higher confidence → more conservative (lower) cutoff.
        assert!(hi.initial_cutoff <= lo.initial_cutoff);
    }

    #[test]
    fn restart_recovers_from_bad_histogram() {
        // Histogram believes scores go to 1000, but actual data is shifted
        // low — the first cutoff passes too few tuples, forcing a restart.
        let optimistic: Vec<f64> = (0..1000).map(f64::from).collect();
        let h = EquiWidthHistogram::build(&optimistic, 20).unwrap();
        let inp: Vec<(u32, f64)> = (0..1000u32).map(|i| (i, f64::from(i % 100))).collect();
        let r = prob_topn(&inp, 50, &h, 0.9).unwrap();
        assert!(r.restarts >= 1);
        assert_eq!(r.items.len(), 50);
        // Still correct despite the bad estimate.
        assert_eq!(r.items, topn(inp, 50));
    }

    #[test]
    fn invalid_confidence_rejected() {
        let inp = scored(10);
        let h = hist(&inp);
        assert_eq!(
            prob_topn(&inp, 1, &h, 0.0),
            Err(ProbError::InvalidConfidence)
        );
        assert_eq!(
            prob_topn(&inp, 1, &h, 1.0),
            Err(ProbError::InvalidConfidence)
        );
        assert_eq!(
            prob_topn(&inp, 1, &h, -3.0),
            Err(ProbError::InvalidConfidence)
        );
    }

    #[test]
    fn zero_n_and_empty_input() {
        let inp = scored(10);
        let h = hist(&inp);
        assert!(prob_topn(&inp, 0, &h, 0.9).unwrap().items.is_empty());
        assert!(prob_topn(&[], 5, &h, 0.9).unwrap().items.is_empty());
    }

    #[test]
    fn n_larger_than_population() {
        let inp = scored(20);
        let h = hist(&inp);
        let r = prob_topn(&inp, 100, &h, 0.9).unwrap();
        assert_eq!(r.items.len(), 20);
    }

    #[test]
    fn normal_quantile_sane() {
        assert!((normal_quantile(0.5)).abs() < 0.01);
        assert!((normal_quantile(0.975) - 1.96).abs() < 0.02);
        assert!((normal_quantile(0.025) + 1.96).abs() < 0.02);
        assert!(normal_quantile(0.99) > 2.0);
    }
}
