//! Fagin's Algorithm (FA).
//!
//! The original middleware algorithm (Fagin, PODS 1996 / JCSS 1999): perform
//! sorted access round-robin on all m lists until at least N objects have
//! been seen in *every* list; then random-access the missing grades of every
//! seen object and return the N best. Correct for every monotone aggregate.
//! Its access cost is O(n^((m−1)/m) · N^(1/m)) with high probability on
//! independent lists — sublinear, which is the "stop early" pay-off the
//! paper imports from the IR/middleware literature.

use std::collections::HashMap;

use crate::heap::TopNHeap;
use crate::traits::{AccessStats, Agg, RandomAccess};

/// Result of a middleware top-N run.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct TopNResult {
    /// The top `n` `(object, score)` pairs, best first.
    pub items: Vec<(u32, f64)>,
    /// Access counts incurred.
    pub stats: AccessStats,
}

/// Run FA for the top `n` objects under `agg`.
///
/// `agg` must validate against the source's list count; invalid weights
/// fall back to [`Agg::Sum`] semantics are *not* provided — the call panics
/// in debug builds via `debug_assert` and produces unweighted sums otherwise.
pub fn fagin_topn<S: RandomAccess>(source: &S, n: usize, agg: &Agg) -> TopNResult {
    let m = source.num_lists();
    debug_assert!(agg.validate(m), "aggregate/list arity mismatch");
    let mut stats = AccessStats::default();
    if n == 0 || m == 0 || source.num_objects() == 0 {
        return TopNResult {
            items: Vec::new(),
            stats,
        };
    }

    // Phase 1: round-robin sorted access until n objects seen in all lists.
    let mut seen_in: HashMap<u32, u32> = HashMap::new();
    let mut complete = 0usize;
    let mut rank = 0usize;
    let mut exhausted = false;
    'outer: while complete < n {
        let mut any = false;
        for list in 0..m {
            if let Some((obj, _grade)) = source.sorted_access(list, rank) {
                stats.sorted_accesses += 1;
                any = true;
                let cnt = seen_in.entry(obj).or_insert(0);
                *cnt += 1;
                if *cnt as usize == m {
                    complete += 1;
                    if complete >= n {
                        break 'outer;
                    }
                }
            }
        }
        if !any {
            exhausted = true;
            break;
        }
        rank += 1;
    }
    let _ = exhausted;

    // Phase 2: random access to fill in missing grades of every seen object.
    let mut heap = TopNHeap::new(n);
    let mut grades = vec![0.0f64; m];
    let mut objs: Vec<u32> = seen_in.keys().copied().collect();
    objs.sort_unstable(); // deterministic iteration
    for obj in objs {
        for (list, g) in grades.iter_mut().enumerate() {
            *g = source.grade(list, obj);
            stats.random_accesses += 1;
        }
        heap.push(obj, agg.apply(&grades));
    }

    TopNResult {
        items: heap.into_sorted_vec(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::InMemoryLists;

    fn lists() -> InMemoryLists {
        InMemoryLists::from_grades(vec![
            vec![0.9, 0.1, 0.5, 0.3, 0.8],
            vec![0.2, 0.8, 0.6, 0.4, 0.7],
        ])
    }

    #[test]
    fn matches_oracle_for_all_n() {
        let l = lists();
        for n in 0..=5 {
            let fa = fagin_topn(&l, n, &Agg::Sum);
            let oracle = l.topk_oracle(n, &Agg::Sum);
            assert_eq!(fa.items, oracle, "n={n}");
        }
    }

    #[test]
    fn matches_oracle_for_min_and_max() {
        let l = lists();
        for agg in [Agg::Min, Agg::Max] {
            let fa = fagin_topn(&l, 2, &agg);
            let oracle = l.topk_oracle(2, &agg);
            assert_eq!(fa.items, oracle, "agg={agg:?}");
        }
    }

    #[test]
    fn weighted_aggregation() {
        let l = lists();
        let agg = Agg::Weighted(vec![1.0, 0.0]); // only list 0 matters
        let fa = fagin_topn(&l, 1, &agg);
        assert_eq!(fa.items[0].0, 0); // obj 0 has the best list-0 grade
    }

    #[test]
    fn zero_n_is_empty() {
        let l = lists();
        let fa = fagin_topn(&l, 0, &Agg::Sum);
        assert!(fa.items.is_empty());
        assert_eq!(fa.stats, AccessStats::default());
    }

    #[test]
    fn n_larger_than_universe() {
        let l = lists();
        let fa = fagin_topn(&l, 100, &Agg::Sum);
        assert_eq!(fa.items.len(), 5);
        assert_eq!(fa.items, l.topk_oracle(5, &Agg::Sum));
    }

    #[test]
    fn counts_accesses() {
        let l = lists();
        let fa = fagin_topn(&l, 1, &Agg::Sum);
        assert!(fa.stats.sorted_accesses >= 2); // at least one round
        assert!(fa.stats.random_accesses >= 2); // fills every seen object
    }

    #[test]
    fn correlated_lists_stop_early() {
        // Identical lists: FA sees the same object at rank 0 in both lists
        // and stops after one round for n = 1.
        let l = InMemoryLists::from_grades(vec![vec![0.1, 0.9, 0.5], vec![0.1, 0.9, 0.5]]);
        let fa = fagin_topn(&l, 1, &Agg::Sum);
        assert_eq!(fa.items[0].0, 1);
        assert_eq!(fa.stats.sorted_accesses, 2);
    }

    #[test]
    fn single_list_degenerates_to_scan_stop() {
        let l = InMemoryLists::from_grades(vec![vec![0.4, 0.2, 0.9, 0.6]]);
        let fa = fagin_topn(&l, 2, &Agg::Sum);
        assert_eq!(fa.items, vec![(2, 0.9), (3, 0.6)]);
        assert_eq!(fa.stats.sorted_accesses, 2);
    }

    #[test]
    fn empty_universe_is_fine() {
        let l = InMemoryLists::from_grades(vec![Vec::new(), Vec::new()]);
        let fa = fagin_topn(&l, 3, &Agg::Sum);
        assert!(fa.items.is_empty());
    }
}
