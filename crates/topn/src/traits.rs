//! Source and aggregation abstractions for top-N middleware algorithms.
//!
//! The Fagin line of work (FA, TA, NRA) models retrieval as m graded lists
//! over one object universe, accessed either *sorted* (descending grade) or
//! *random* (grade of a given object). The cost model counts accesses, which
//! is what the paper's "stop as soon as the top N is certain" argument is
//! about — so every algorithm in this crate reports an [`AccessStats`].

/// Counts of the two access kinds performed by an algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[must_use]
pub struct AccessStats {
    /// Number of sorted (sequential, per-list) accesses.
    pub sorted_accesses: usize,
    /// Number of random (by-object) accesses.
    pub random_accesses: usize,
}

impl AccessStats {
    /// Total accesses, weighting random accesses by `random_cost` relative
    /// to sorted accesses (Fagin's middleware cost `s + cR·r`).
    pub fn middleware_cost(&self, random_cost: f64) -> f64 {
        self.sorted_accesses as f64 + random_cost * self.random_accesses as f64
    }
}

/// Sorted access over m descending-grade lists.
pub trait SortedAccess {
    /// Number of lists (m).
    fn num_lists(&self) -> usize;
    /// Number of objects in the universe.
    fn num_objects(&self) -> usize;
    /// The `rank`-th best `(object, grade)` of `list` (0-based rank),
    /// or `None` past the end.
    fn sorted_access(&self, list: usize, rank: usize) -> Option<(u32, f64)>;
}

/// Random access to the grade of a given object in a given list.
pub trait RandomAccess: SortedAccess {
    /// The grade of `obj` in `list`.
    fn grade(&self, list: usize, obj: u32) -> f64;
}

/// Monotone aggregation functions over per-list grades.
///
/// All variants are monotone in every argument, the property FA/TA/NRA
/// correctness rests on. `Weighted` reproduces the user-weighted term
/// combination of Fagin & Maarek ("Allowing users to weight search terms").
#[derive(Debug, Clone, PartialEq)]
pub enum Agg {
    /// Sum of grades.
    Sum,
    /// Minimum grade (fuzzy conjunction).
    Min,
    /// Maximum grade (fuzzy disjunction).
    Max,
    /// Non-negative weighted sum; one weight per list.
    Weighted(Vec<f64>),
}

impl Agg {
    /// Apply the aggregate to a full grade vector.
    pub fn apply(&self, grades: &[f64]) -> f64 {
        match self {
            Agg::Sum => grades.iter().sum(),
            Agg::Min => grades.iter().copied().fold(f64::INFINITY, f64::min),
            Agg::Max => grades.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Agg::Weighted(w) => grades.iter().zip(w).map(|(&g, &wi)| g * wi).sum(),
        }
    }

    /// Whether the weight vector (if any) matches `m` lists and is valid.
    pub fn validate(&self, m: usize) -> bool {
        match self {
            Agg::Weighted(w) => w.len() == m && w.iter().all(|&x| x >= 0.0 && x.is_finite()),
            _ => true,
        }
    }
}

/// A plain in-memory realization of m grade lists with precomputed sorted
/// orders; the reference [`SortedAccess`]/[`RandomAccess`] source.
#[derive(Debug, Clone)]
pub struct InMemoryLists {
    /// `grades[i][obj]`.
    grades: Vec<Vec<f64>>,
    /// `order[i]` = object ids of list `i`, best first.
    order: Vec<Vec<u32>>,
}

impl InMemoryLists {
    /// Build from raw per-list grade vectors (`grades[i][obj]`). All lists
    /// must have equal length. Sorted orders are precomputed with ties
    /// broken by object id.
    pub fn from_grades(grades: Vec<Vec<f64>>) -> InMemoryLists {
        let order = grades
            .iter()
            .map(|list| {
                let mut ids: Vec<u32> = (0..list.len() as u32).collect();
                ids.sort_by(|&a, &b| {
                    list[b as usize]
                        .total_cmp(&list[a as usize])
                        .then(a.cmp(&b))
                });
                ids
            })
            .collect();
        InMemoryLists { grades, order }
    }

    /// Exact top-k under `agg` by exhaustive scan (the correctness oracle).
    pub fn topk_oracle(&self, k: usize, agg: &Agg) -> Vec<(u32, f64)> {
        let n = self.num_objects();
        let mut all: Vec<(u32, f64)> = (0..n as u32)
            .map(|o| {
                let grades: Vec<f64> = (0..self.num_lists()).map(|i| self.grade(i, o)).collect();
                (o, agg.apply(&grades))
            })
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

impl SortedAccess for InMemoryLists {
    fn num_lists(&self) -> usize {
        self.grades.len()
    }

    fn num_objects(&self) -> usize {
        self.grades.first().map_or(0, Vec::len)
    }

    fn sorted_access(&self, list: usize, rank: usize) -> Option<(u32, f64)> {
        let obj = *self.order.get(list)?.get(rank)?;
        Some((obj, self.grades[list][obj as usize]))
    }
}

impl RandomAccess for InMemoryLists {
    fn grade(&self, list: usize, obj: u32) -> f64 {
        self.grades[list][obj as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lists() -> InMemoryLists {
        InMemoryLists::from_grades(vec![
            vec![0.9, 0.1, 0.5, 0.3], // list 0
            vec![0.2, 0.8, 0.5, 0.4], // list 1
        ])
    }

    #[test]
    fn sorted_access_descends() {
        let l = lists();
        assert_eq!(l.sorted_access(0, 0), Some((0, 0.9)));
        assert_eq!(l.sorted_access(0, 1), Some((2, 0.5)));
        assert_eq!(l.sorted_access(0, 3), Some((1, 0.1)));
        assert_eq!(l.sorted_access(0, 4), None);
        assert_eq!(l.sorted_access(9, 0), None);
    }

    #[test]
    fn random_access_grades() {
        let l = lists();
        assert_eq!(l.grade(1, 1), 0.8);
        assert_eq!(l.grade(0, 3), 0.3);
    }

    #[test]
    fn agg_apply() {
        assert_eq!(Agg::Sum.apply(&[0.5, 0.25]), 0.75);
        assert_eq!(Agg::Min.apply(&[0.5, 0.25]), 0.25);
        assert_eq!(Agg::Max.apply(&[0.5, 0.25]), 0.5);
        assert_eq!(Agg::Weighted(vec![2.0, 4.0]).apply(&[0.5, 0.25]), 2.0);
    }

    #[test]
    fn agg_validation() {
        assert!(Agg::Sum.validate(3));
        assert!(Agg::Weighted(vec![1.0, 2.0]).validate(2));
        assert!(!Agg::Weighted(vec![1.0]).validate(2));
        assert!(!Agg::Weighted(vec![-1.0, 2.0]).validate(2));
        assert!(!Agg::Weighted(vec![f64::NAN, 2.0]).validate(2));
    }

    #[test]
    fn oracle_is_sorted_and_correct() {
        let l = lists();
        let top = l.topk_oracle(2, &Agg::Sum);
        // Sums: obj0 1.1, obj1 0.9, obj2 1.0, obj3 0.7.
        assert_eq!(top, vec![(0, 1.1), (2, 1.0)]);
    }

    #[test]
    fn ties_break_by_object_id() {
        let l = InMemoryLists::from_grades(vec![vec![0.5, 0.5, 0.5]]);
        assert_eq!(l.sorted_access(0, 0), Some((0, 0.5)));
        assert_eq!(l.sorted_access(0, 1), Some((1, 0.5)));
        let top = l.topk_oracle(2, &Agg::Sum);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[1].0, 1);
    }

    #[test]
    fn middleware_cost_weighting() {
        let s = AccessStats {
            sorted_accesses: 10,
            random_accesses: 4,
        };
        assert_eq!(s.middleware_cost(1.0), 14.0);
        assert_eq!(s.middleware_cost(5.0), 30.0);
    }

    #[test]
    fn empty_universe() {
        let l = InMemoryLists::from_grades(vec![Vec::new()]);
        assert_eq!(l.num_objects(), 0);
        assert_eq!(l.sorted_access(0, 0), None);
        assert!(l.topk_oracle(3, &Agg::Sum).is_empty());
    }
}
