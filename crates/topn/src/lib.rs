//! # moa-topn — the top-N algorithm family
//!
//! Implementations of every top-N technique the paper surveys as state of
//! the art, all instrumented with access/tuple counters so experiments can
//! compare *work*, not just wall time:
//!
//! * [`heap`] — bounded-heap top-N (sort-stop) and the full-sort baseline,
//! * [`fagin`] — Fagin's Algorithm (FA) over m graded lists,
//! * [`ta`] — the Threshold Algorithm with frontier-bound early stopping,
//! * [`nra`] — No-Random-Access with `[lower, upper]` bound administration
//!   (the paper's "upper and lower bound administration"),
//! * [`stop_after`] — Carey–Kossmann STOP AFTER placement policies
//!   (conservative / aggressive-with-restart / scan-stop),
//! * [`prob`] — Donjerkovic–Ramakrishnan probabilistic cutoff top-N driven
//!   by `moa-storage` histograms.
//!
//! Sources are abstracted by [`traits::SortedAccess`] / [`traits::RandomAccess`];
//! [`traits::InMemoryLists`] is the reference realization.

#![warn(missing_docs)]

pub mod fagin;
pub mod heap;
pub mod nra;
pub mod prob;
pub mod stop_after;
pub mod ta;
pub mod traits;

pub use fagin::{fagin_topn, TopNResult};
pub use heap::{kway_merge_sorted, topn, topn_full_sort, TopNHeap};
pub use nra::nra_topn;
pub use prob::{prob_topn, ProbError, ProbTopNReport};
pub use stop_after::{aggressive, conservative, scan_stop, StopAfterReport};
pub use ta::ta_topn;
pub use traits::{AccessStats, Agg, InMemoryLists, RandomAccess, SortedAccess};
