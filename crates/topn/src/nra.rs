//! No-Random-Access algorithm (NRA).
//!
//! When random access is unavailable or expensive (e.g. postings streamed
//! from disk), NRA keeps, for every object seen under sorted access, a
//! *lower* bound (missing grades = 0) and an *upper* bound (missing grades =
//! the per-list frontier) on its aggregate score. It halts once the N best
//! lower bounds dominate every other candidate's upper bound and the bound
//! on unseen objects. This is literally the "upper and lower bound
//! administration" of the paper's Section 2.
//!
//! Grades are assumed to lie in `[0, ∞)`; the missing-grade lower bound is 0.

use std::collections::HashMap;

use crate::fagin::TopNResult;
use crate::traits::{AccessStats, Agg, SortedAccess};

/// Per-object bookkeeping.
#[derive(Debug, Clone)]
struct Candidate {
    /// Known grades; `None` where not yet seen.
    grades: Vec<Option<f64>>,
}

impl Candidate {
    fn new(m: usize) -> Candidate {
        Candidate {
            grades: vec![None; m],
        }
    }

    fn lower(&self, agg: &Agg) -> f64 {
        let filled: Vec<f64> = self.grades.iter().map(|g| g.unwrap_or(0.0)).collect();
        agg.apply(&filled)
    }

    fn upper(&self, agg: &Agg, frontier: &[f64]) -> f64 {
        let filled: Vec<f64> = self
            .grades
            .iter()
            .zip(frontier)
            .map(|(g, &f)| g.unwrap_or(f))
            .collect();
        agg.apply(&filled)
    }
}

/// Run NRA for the top `n` objects under `agg` using only sorted access.
///
/// The returned scores are the candidates' lower bounds at termination;
/// they equal the exact scores whenever the object was seen in all lists
/// (always true once the lists are exhausted). The returned *set* is always
/// exact for monotone aggregates.
pub fn nra_topn<S: SortedAccess>(source: &S, n: usize, agg: &Agg) -> TopNResult {
    let m = source.num_lists();
    debug_assert!(agg.validate(m), "aggregate/list arity mismatch");
    let mut stats = AccessStats::default();
    if n == 0 || m == 0 || source.num_objects() == 0 {
        return TopNResult {
            items: Vec::new(),
            stats,
        };
    }

    let mut candidates: HashMap<u32, Candidate> = HashMap::new();
    let mut frontier = vec![f64::INFINITY; m];
    let mut rank = 0usize;
    let mut exhausted = vec![false; m];
    // The halting test sorts all candidates (O(c log c)); running it every
    // round would make deep scans quadratic. It is throttled: the interval
    // grows with the candidate set, so test cost stays amortized-linear.
    let mut next_check = 0usize;

    loop {
        let mut any = false;
        for list in 0..m {
            if exhausted[list] {
                continue;
            }
            match source.sorted_access(list, rank) {
                Some((obj, grade)) => {
                    stats.sorted_accesses += 1;
                    any = true;
                    frontier[list] = grade;
                    candidates
                        .entry(obj)
                        .or_insert_with(|| Candidate::new(m))
                        .grades[list] = Some(grade);
                }
                None => {
                    exhausted[list] = true;
                    frontier[list] = 0.0; // no unseen grade can exceed 0 here
                }
            }
        }
        let all_exhausted = exhausted.iter().all(|&e| e);
        if !any && !all_exhausted {
            break; // defensive: no progress possible
        }
        if rank < next_check && !all_exhausted {
            rank += 1;
            continue;
        }
        next_check = rank + 1 + candidates.len() / 64;

        // Halting test.
        let mut scored: Vec<(u32, f64)> = candidates
            .iter()
            .map(|(&obj, c)| (obj, c.lower(agg)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        if scored.len() >= n.min(source.num_objects()) {
            let kth = scored
                .get(n.saturating_sub(1))
                .map(|&(_, s)| s)
                .unwrap_or(f64::NEG_INFINITY);
            let top_ids: std::collections::HashSet<u32> =
                scored.iter().take(n).map(|&(o, _)| o).collect();
            // Upper bound of the best non-top candidate…
            let mut max_other_upper = f64::NEG_INFINITY;
            for (&obj, c) in &candidates {
                if !top_ids.contains(&obj) {
                    max_other_upper = max_other_upper.max(c.upper(agg, &frontier));
                }
            }
            // …and of any completely unseen object.
            if candidates.len() < source.num_objects() {
                max_other_upper = max_other_upper.max(agg.apply(&frontier));
            }
            if all_exhausted || max_other_upper <= kth {
                scored.truncate(n);
                return TopNResult {
                    items: scored,
                    stats,
                };
            }
        } else if all_exhausted {
            scored.truncate(n);
            return TopNResult {
                items: scored,
                stats,
            };
        }
        rank += 1;
    }

    // Defensive fallback: report current best lower bounds.
    let mut scored: Vec<(u32, f64)> = candidates
        .iter()
        .map(|(&obj, c)| (obj, c.lower(agg)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(n);
    TopNResult {
        items: scored,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{InMemoryLists, RandomAccess};

    fn lists() -> InMemoryLists {
        InMemoryLists::from_grades(vec![
            vec![0.9, 0.1, 0.5, 0.3, 0.8],
            vec![0.2, 0.8, 0.6, 0.4, 0.7],
        ])
    }

    fn ids(items: &[(u32, f64)]) -> Vec<u32> {
        items.iter().map(|&(o, _)| o).collect()
    }

    #[test]
    fn returns_correct_set_for_all_n() {
        let l = lists();
        for n in 1..=5 {
            let nra = nra_topn(&l, n, &Agg::Sum);
            let oracle = l.topk_oracle(n, &Agg::Sum);
            let mut got = ids(&nra.items);
            let mut want = ids(&oracle);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn reported_scores_are_sound_lower_bounds() {
        // NRA may halt before fully resolving every candidate; the reported
        // scores are lower bounds that never exceed the exact score.
        let l = lists();
        for n in 1..=5 {
            let nra = nra_topn(&l, n, &Agg::Sum);
            for &(obj, reported) in &nra.items {
                let exact = l.grade(0, obj) + l.grade(1, obj);
                assert!(
                    reported <= exact + 1e-12,
                    "obj {obj}: lower bound {reported} exceeds exact {exact}"
                );
            }
        }
    }

    #[test]
    fn full_run_on_single_object_lists_is_exact() {
        let l = InMemoryLists::from_grades(vec![vec![0.4], vec![0.6]]);
        let nra = nra_topn(&l, 1, &Agg::Sum);
        assert_eq!(nra.items, vec![(0, 1.0)]);
    }

    #[test]
    fn no_random_accesses_ever() {
        let l = lists();
        for n in 1..=5 {
            assert_eq!(nra_topn(&l, n, &Agg::Sum).stats.random_accesses, 0);
        }
    }

    #[test]
    fn zero_n_and_empty() {
        let l = lists();
        assert!(nra_topn(&l, 0, &Agg::Sum).items.is_empty());
        let empty = InMemoryLists::from_grades(vec![Vec::new(), Vec::new()]);
        assert!(nra_topn(&empty, 2, &Agg::Sum).items.is_empty());
    }

    #[test]
    fn early_termination_on_skewed_lists() {
        // One object dominates both lists: NRA should stop well before
        // exhausting 1000-object lists for n = 1.
        let n_obj = 1000usize;
        let mut a: Vec<f64> = (0..n_obj)
            .map(|i| 0.3 * (i as f64 / n_obj as f64))
            .collect();
        let mut b = a.clone();
        a[7] = 1.0;
        b[7] = 1.0;
        let l = InMemoryLists::from_grades(vec![a, b]);
        let nra = nra_topn(&l, 1, &Agg::Sum);
        assert_eq!(ids(&nra.items), vec![7]);
        assert!(
            nra.stats.sorted_accesses < 2 * n_obj,
            "did {} accesses",
            nra.stats.sorted_accesses
        );
    }

    #[test]
    fn min_aggregate_set_is_correct() {
        let l = lists();
        let nra = nra_topn(&l, 2, &Agg::Min);
        let oracle = l.topk_oracle(2, &Agg::Min);
        let mut got = ids(&nra.items);
        let mut want = ids(&oracle);
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn n_larger_than_universe() {
        let l = lists();
        let nra = nra_topn(&l, 99, &Agg::Sum);
        assert_eq!(nra.items.len(), 5);
    }

    #[test]
    fn uneven_universe_single_list() {
        let l = InMemoryLists::from_grades(vec![vec![0.2, 0.9, 0.4]]);
        let nra = nra_topn(&l, 2, &Agg::Sum);
        assert_eq!(ids(&nra.items), vec![1, 2]);
    }
}
