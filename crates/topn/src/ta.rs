//! The Threshold Algorithm (TA).
//!
//! Fagin–Lotem–Naor's instance-optimal refinement of FA: on every sorted
//! access, immediately random-access the object's remaining grades and keep
//! a bounded heap of exact scores; stop as soon as the heap's N-th score is
//! at least the *threshold* — the aggregate of the current per-list frontier
//! grades, an upper bound on every unseen object. This is precisely the
//! "proper upper … bound administration" the paper describes.

use std::collections::HashSet;

use crate::fagin::TopNResult;
use crate::heap::TopNHeap;
use crate::traits::{AccessStats, Agg, RandomAccess};

/// Run TA for the top `n` objects under `agg`.
pub fn ta_topn<S: RandomAccess>(source: &S, n: usize, agg: &Agg) -> TopNResult {
    let m = source.num_lists();
    debug_assert!(agg.validate(m), "aggregate/list arity mismatch");
    let mut stats = AccessStats::default();
    if n == 0 || m == 0 || source.num_objects() == 0 {
        return TopNResult {
            items: Vec::new(),
            stats,
        };
    }

    let mut heap = TopNHeap::new(n);
    let mut processed: HashSet<u32> = HashSet::new();
    let mut frontier = vec![f64::INFINITY; m];
    let mut grades = vec![0.0f64; m];
    let mut rank = 0usize;

    loop {
        let mut any = false;
        for (list, front) in frontier.iter_mut().enumerate() {
            if let Some((obj, grade)) = source.sorted_access(list, rank) {
                stats.sorted_accesses += 1;
                any = true;
                *front = grade;
                if processed.insert(obj) {
                    for (l, g) in grades.iter_mut().enumerate() {
                        if l == list {
                            *g = grade;
                        } else {
                            *g = source.grade(l, obj);
                            stats.random_accesses += 1;
                        }
                    }
                    heap.push(obj, agg.apply(&grades));
                }
            } else {
                // Exhausted list: its frontier no longer bounds anything.
                *front = f64::NEG_INFINITY;
            }
        }
        if !any {
            break; // all lists exhausted
        }
        // Threshold test: unseen objects can score at most agg(frontier).
        let threshold = agg.apply(&frontier);
        if let Some(kth) = heap.threshold() {
            if kth >= threshold {
                break;
            }
        }
        rank += 1;
    }

    TopNResult {
        items: heap.into_sorted_vec(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fagin::fagin_topn;
    use crate::traits::InMemoryLists;

    fn lists() -> InMemoryLists {
        InMemoryLists::from_grades(vec![
            vec![0.9, 0.1, 0.5, 0.3, 0.8],
            vec![0.2, 0.8, 0.6, 0.4, 0.7],
            vec![0.5, 0.5, 0.9, 0.1, 0.6],
        ])
    }

    #[test]
    fn matches_oracle_for_all_n() {
        let l = lists();
        for n in 0..=5 {
            let ta = ta_topn(&l, n, &Agg::Sum);
            assert_eq!(ta.items, l.topk_oracle(n, &Agg::Sum), "n={n}");
        }
    }

    #[test]
    fn matches_oracle_for_min_max_weighted() {
        let l = lists();
        for agg in [Agg::Min, Agg::Max, Agg::Weighted(vec![0.5, 1.5, 1.0])] {
            let ta = ta_topn(&l, 3, &agg);
            let oracle = l.topk_oracle(3, &agg);
            // Compare object sets and scores (order may differ only on
            // exact ties, which the shared tie-break rules align).
            assert_eq!(ta.items, oracle, "agg={agg:?}");
        }
    }

    #[test]
    fn never_more_sorted_accesses_than_fa() {
        // TA stops at least as early as FA on the same instance
        // (instance-optimality property, checked on several workloads).
        for seed_shift in 0..5u32 {
            let grades: Vec<Vec<f64>> = (0..3)
                .map(|l| {
                    (0..40)
                        .map(|i| {
                            let x = ((i as u32)
                                .wrapping_mul(2654435761u32)
                                .wrapping_add(l * 97 + seed_shift))
                                % 1000;
                            f64::from(x) / 1000.0
                        })
                        .collect()
                })
                .collect();
            let src = InMemoryLists::from_grades(grades);
            let ta = ta_topn(&src, 5, &Agg::Sum);
            let fa = fagin_topn(&src, 5, &Agg::Sum);
            assert_eq!(ta.items, fa.items);
            // TA halts no later than FA (Fagin–Lotem–Naor); FA may break
            // mid-round while TA always finishes the round, hence the +m
            // slack.
            assert!(
                ta.stats.sorted_accesses <= fa.stats.sorted_accesses + 3,
                "TA {} > FA {} + m",
                ta.stats.sorted_accesses,
                fa.stats.sorted_accesses
            );
        }
    }

    #[test]
    fn identical_lists_stop_after_n_rounds() {
        let l = InMemoryLists::from_grades(vec![
            vec![0.9, 0.8, 0.7, 0.6, 0.5],
            vec![0.9, 0.8, 0.7, 0.6, 0.5],
        ]);
        let ta = ta_topn(&l, 2, &Agg::Sum);
        assert_eq!(ta.items, vec![(0, 1.8), (1, 1.6)]);
        // Threshold after rank r is 2·grade(r); k-th best is 1.6 at rank 1.
        assert!(ta.stats.sorted_accesses <= 6);
    }

    #[test]
    fn zero_n_and_empty_universe() {
        let l = lists();
        assert!(ta_topn(&l, 0, &Agg::Sum).items.is_empty());
        let empty = InMemoryLists::from_grades(vec![Vec::new()]);
        assert!(ta_topn(&empty, 3, &Agg::Sum).items.is_empty());
    }

    #[test]
    fn n_larger_than_universe_returns_all() {
        let l = lists();
        let ta = ta_topn(&l, 50, &Agg::Sum);
        assert_eq!(ta.items.len(), 5);
        assert_eq!(ta.items, l.topk_oracle(5, &Agg::Sum));
    }

    #[test]
    fn anticorrelated_needs_deeper_scan_than_correlated() {
        let n_obj = 200usize;
        // Correlated: list2 = list1. Anti: list2 = reverse of list1.
        let base: Vec<f64> = (0..n_obj).map(|i| i as f64 / n_obj as f64).collect();
        let corr = InMemoryLists::from_grades(vec![base.clone(), base.clone()]);
        let rev: Vec<f64> = base.iter().map(|&v| 1.0 - v).collect();
        let anti = InMemoryLists::from_grades(vec![base, rev]);
        let t_corr = ta_topn(&corr, 10, &Agg::Sum);
        let t_anti = ta_topn(&anti, 10, &Agg::Sum);
        assert!(
            t_anti.stats.sorted_accesses > t_corr.stats.sorted_accesses,
            "anti {} <= corr {}",
            t_anti.stats.sorted_accesses,
            t_corr.stats.sorted_accesses
        );
    }
}
