//! Bounded top-N heap (the *sort-stop* physical operator).
//!
//! Maintains the N best `(object, score)` pairs seen so far in a min-heap,
//! so inserting each of `n` candidates costs O(log N) — the classic
//! replacement for a full O(n log n) sort when only a top-N is needed
//! (Carey & Kossmann's sort-stop).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry ordered so the *worst* (lowest score, then highest id) is at the
/// top of a max-heap — i.e. a min-heap over scores.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    score: f64,
    obj: u32,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse score order (min-heap by score); on ties the *larger* obj
        // id is "greater" = evicted first, keeping the smallest ids.
        other
            .score
            .total_cmp(&self.score)
            .then(self.obj.cmp(&other.obj))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded heap keeping the N highest-scoring objects.
#[derive(Debug, Clone)]
pub struct TopNHeap {
    heap: BinaryHeap<Entry>,
    capacity: usize,
    pushes: usize,
}

impl TopNHeap {
    /// Create a heap retaining the best `capacity` entries.
    pub fn new(capacity: usize) -> TopNHeap {
        TopNHeap {
            heap: BinaryHeap::with_capacity(capacity.saturating_add(1)),
            capacity,
            pushes: 0,
        }
    }

    /// Reset the heap for a new query at `capacity`, keeping the backing
    /// allocation: the pooled-scratch query paths reuse one heap per
    /// engine so steady-state queries allocate nothing. Grows the buffer
    /// only when `capacity` exceeds every previously seen capacity.
    pub fn reset(&mut self, capacity: usize) {
        self.heap.clear();
        self.pushes = 0;
        self.capacity = capacity;
        // After clear() len == 0, so this reserves relative to empty.
        self.heap.reserve(capacity.saturating_add(1));
    }

    /// Offer an `(obj, score)` pair.
    pub fn push(&mut self, obj: u32, score: f64) {
        self.pushes += 1;
        if self.capacity == 0 {
            return;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(Entry { score, obj });
            return;
        }
        // Full: compare against the current worst.
        if self.would_enter(score, obj) {
            self.heap.pop();
            self.heap.push(Entry { score, obj });
        }
    }

    /// Whether offering `(obj, score)` right now would change the retained
    /// set — a threshold compare with no `Entry` churn, the fast-reject
    /// that bounds-pruned evaluation (MaxScore DAAT) calls per candidate.
    ///
    /// Tie-aware: at `score ==` the threshold, the candidate enters only
    /// if its id beats the current worst's id (score desc, id asc
    /// contract). Upper-bound pruning stays sound because for a fixed
    /// `obj` the answer is monotone in `score`: if a document's score
    /// *upper bound* would not enter, its true score cannot either.
    #[inline]
    pub fn would_enter(&self, score: f64, obj: u32) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let Some(worst) = self.heap.peek() else {
            return true;
        };
        if self.heap.len() < self.capacity {
            return true;
        }
        // Candidate beats worst iff worst is "greater" in eviction order.
        *worst > Entry { score, obj }
    }

    /// The score of the N-th (worst retained) entry, if the heap is full.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.capacity && self.capacity > 0 {
            self.heap.peek().map(|e| e.score)
        } else {
            None
        }
    }

    /// Current number of retained entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the heap holds `capacity` entries.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.capacity
    }

    /// Number of `push` calls made.
    pub fn pushes(&self) -> usize {
        self.pushes
    }

    /// Extract the retained entries, best first (score desc, id asc on ties).
    pub fn into_sorted_vec(self) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = self.heap.into_iter().map(|e| (e.obj, e.score)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Drain the retained entries into `out`, best first (score desc, id
    /// asc on ties) — the allocation-free extraction: `out` is cleared and
    /// refilled in place, the heap empties but keeps its buffer for the
    /// next [`TopNHeap::reset`]. The sort is unstable, which is safe
    /// because the (score, id) eviction order is a total order over the
    /// retained entries (ids are unique).
    pub fn extract_sorted_into(&mut self, out: &mut Vec<(u32, f64)>) {
        out.clear();
        out.extend(self.heap.drain().map(|e| (e.obj, e.score)));
        out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    }

    /// Fold another heap's retained entries into this one, keeping this
    /// heap's capacity and the usual (score desc, id asc) retention order
    /// — the shard-merge primitive: each shard ranks its own partition
    /// into a local heap, and the coordinator folds the local heaps into
    /// one global top-N. Offering an entry already retained (same object
    /// *and* score) is the caller's bug; partitioned inputs never produce
    /// one. Counts one push per folded entry.
    pub fn merge_from(&mut self, other: &TopNHeap) {
        for e in &other.heap {
            self.push(e.obj, e.score);
        }
    }
}

/// Merge already-sorted `(obj, score)` rankings — each descending by
/// score with ascending-id ties, as [`TopNHeap::into_sorted_vec`] emits —
/// into the global top `n` under the same order. A k-way streaming merge:
/// ties across lists resolve by object id (*tie-stable*: equal-scored
/// objects come out in ascending id order no matter which lists they came
/// from), and no more than `n` entries are materialized.
pub fn kway_merge_sorted(lists: &[&[(u32, f64)]], n: usize) -> Vec<(u32, f64)> {
    /// Heap entry: the head of one list, ordered best-first.
    struct Head {
        obj: u32,
        score: f64,
        list: usize,
        pos: usize,
    }
    impl PartialEq for Head {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Head {}
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> Ordering {
            // Max-heap: higher score first, then *smaller* id first.
            self.score
                .total_cmp(&other.score)
                .then(other.obj.cmp(&self.obj))
        }
    }
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heads: BinaryHeap<Head> = lists
        .iter()
        .enumerate()
        .filter_map(|(li, l)| {
            l.first().map(|&(obj, score)| Head {
                obj,
                score,
                list: li,
                pos: 0,
            })
        })
        .collect();
    let mut out = Vec::with_capacity(n.min(lists.iter().map(|l| l.len()).sum()));
    while out.len() < n {
        let Some(head) = heads.pop() else {
            break;
        };
        out.push((head.obj, head.score));
        if let Some(&(obj, score)) = lists[head.list].get(head.pos + 1) {
            heads.push(Head {
                obj,
                score,
                list: head.list,
                pos: head.pos + 1,
            });
        }
    }
    out
}

/// Top-N of a `(obj, score)` stream via the bounded heap.
pub fn topn(items: impl IntoIterator<Item = (u32, f64)>, n: usize) -> Vec<(u32, f64)> {
    let mut heap = TopNHeap::new(n);
    for (obj, score) in items {
        heap.push(obj, score);
    }
    heap.into_sorted_vec()
}

/// Baseline: top-N via a full materialize-and-sort (what a system without a
/// top-N operator does; the "unoptimized case" in the paper's terms).
pub fn topn_full_sort(items: impl IntoIterator<Item = (u32, f64)>, n: usize) -> Vec<(u32, f64)> {
    let mut all: Vec<(u32, f64)> = items.into_iter().collect();
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(n);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<(u32, f64)> {
        vec![(0, 0.3), (1, 0.9), (2, 0.1), (3, 0.9), (4, 0.5), (5, 0.7)]
    }

    #[test]
    fn heap_matches_full_sort() {
        for n in 0..=7 {
            assert_eq!(topn(stream(), n), topn_full_sort(stream(), n), "n={n}");
        }
    }

    #[test]
    fn keeps_best_and_orders_desc() {
        let top = topn(stream(), 3);
        assert_eq!(top, vec![(1, 0.9), (3, 0.9), (5, 0.7)]);
    }

    #[test]
    fn tie_break_is_by_object_id() {
        let top = topn(vec![(9, 0.5), (2, 0.5), (7, 0.5)], 2);
        assert_eq!(top, vec![(2, 0.5), (7, 0.5)]);
    }

    #[test]
    fn zero_capacity() {
        let mut h = TopNHeap::new(0);
        h.push(1, 0.5);
        assert!(h.is_empty());
        assert!(h.into_sorted_vec().is_empty());
    }

    #[test]
    fn threshold_only_when_full() {
        let mut h = TopNHeap::new(2);
        assert_eq!(h.threshold(), None);
        h.push(1, 0.9);
        assert_eq!(h.threshold(), None);
        h.push(2, 0.4);
        assert_eq!(h.threshold(), Some(0.4));
        h.push(3, 0.6);
        assert_eq!(h.threshold(), Some(0.6));
    }

    #[test]
    fn would_enter_tracks_push_outcomes() {
        let mut h = TopNHeap::new(2);
        // Not full: everything would enter.
        assert!(h.would_enter(0.0, 7));
        assert!(h.would_enter(f64::NEG_INFINITY, 0));
        h.push(5, 0.5);
        assert!(h.would_enter(0.1, 9));
        h.push(9, 0.9);
        // Full with worst = (5, 0.5).
        assert!(!h.would_enter(0.4, 1));
        assert!(h.would_enter(0.6, 1));
        // Push must agree with the prediction.
        assert!(h.would_enter(0.7, 3));
        h.push(3, 0.7);
        assert_eq!(h.threshold(), Some(0.7));
    }

    #[test]
    fn would_enter_tie_on_threshold_respects_id_order() {
        let mut h = TopNHeap::new(2);
        h.push(4, 0.5);
        h.push(8, 0.9);
        // Worst retained is (4, 0.5). A tied score enters only with a
        // smaller id (score desc, id asc contract).
        assert!(h.would_enter(0.5, 2), "smaller id must enter on tie");
        assert!(!h.would_enter(0.5, 4), "equal entry must not re-enter");
        assert!(!h.would_enter(0.5, 6), "larger id must lose the tie");
        h.push(2, 0.5);
        assert_eq!(h.clone().into_sorted_vec(), vec![(8, 0.9), (2, 0.5)]);
        // And the losing tie push indeed changed nothing.
        h.push(6, 0.5);
        assert_eq!(h.into_sorted_vec(), vec![(8, 0.9), (2, 0.5)]);
    }

    #[test]
    fn would_enter_zero_capacity_rejects_everything() {
        let h = TopNHeap::new(0);
        assert!(!h.would_enter(f64::INFINITY, 0));
    }

    #[test]
    fn pushes_counted() {
        let mut h = TopNHeap::new(1);
        for (o, s) in stream() {
            h.push(o, s);
        }
        assert_eq!(h.pushes(), 6);
    }

    #[test]
    fn merge_from_equals_pushing_the_union() {
        // Partition a stream across three "shards", rank each locally,
        // merge the local heaps: identical to one heap over the union.
        for n in 1..=7 {
            let mut merged = TopNHeap::new(n);
            for shard in 0..3u32 {
                let mut local = TopNHeap::new(n);
                for (o, s) in stream().into_iter().filter(|&(o, _)| o % 3 == shard) {
                    local.push(o, s);
                }
                merged.merge_from(&local);
            }
            assert_eq!(
                merged.into_sorted_vec(),
                topn(stream(), n),
                "n={n}: merged shard heaps diverge from the global heap"
            );
        }
    }

    #[test]
    fn merge_from_respects_capacity_and_ties() {
        let mut a = TopNHeap::new(2);
        a.push(9, 0.5);
        a.push(1, 0.9);
        let mut b = TopNHeap::new(5); // differing capacity is fine
        b.push(2, 0.5);
        b.push(7, 0.5);
        a.merge_from(&b);
        // Tie at 0.5 resolves by ascending id: 2 beats 7 and 9.
        assert_eq!(a.len(), 2);
        assert_eq!(a.into_sorted_vec(), vec![(1, 0.9), (2, 0.5)]);
    }

    #[test]
    fn merge_from_empty_is_a_noop() {
        let mut a = TopNHeap::new(3);
        a.push(1, 0.4);
        a.merge_from(&TopNHeap::new(3));
        assert_eq!(a.into_sorted_vec(), vec![(1, 0.4)]);
        let mut empty = TopNHeap::new(3);
        let mut other = TopNHeap::new(3);
        other.push(2, 0.8);
        empty.merge_from(&other);
        assert_eq!(empty.into_sorted_vec(), vec![(2, 0.8)]);
    }

    #[test]
    fn reset_reuses_the_heap_across_queries() {
        let mut h = TopNHeap::new(3);
        for (o, s) in stream() {
            h.push(o, s);
        }
        let mut out = Vec::new();
        h.extract_sorted_into(&mut out);
        assert_eq!(out, topn(stream(), 3));
        assert!(h.is_empty(), "extract drains the heap");
        // A fresh query at a different capacity behaves like a new heap.
        h.reset(2);
        assert_eq!(h.pushes(), 0);
        for (o, s) in stream() {
            h.push(o, s);
        }
        h.extract_sorted_into(&mut out);
        assert_eq!(out, topn(stream(), 2));
        // Extraction order ties resolve by ascending id, as into_sorted_vec.
        h.reset(3);
        h.push(9, 0.5);
        h.push(2, 0.5);
        h.push(7, 0.5);
        h.extract_sorted_into(&mut out);
        assert_eq!(out, vec![(2, 0.5), (7, 0.5), (9, 0.5)]);
    }

    #[test]
    fn kway_merge_matches_global_sort() {
        // Split a stream into lists by id residue, sort each like
        // into_sorted_vec does, and merge: identical to the global top-N.
        let items = vec![
            (0, 0.3),
            (1, 0.9),
            (2, 0.1),
            (3, 0.9),
            (4, 0.5),
            (5, 0.7),
            (6, 0.5),
            (7, 0.5),
            (8, 0.0),
        ];
        for parts in 1..=4u32 {
            let lists: Vec<Vec<(u32, f64)>> = (0..parts)
                .map(|p| {
                    let mut l: Vec<(u32, f64)> = items
                        .iter()
                        .copied()
                        .filter(|&(o, _)| o % parts == p)
                        .collect();
                    l.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                    l
                })
                .collect();
            let refs: Vec<&[(u32, f64)]> = lists.iter().map(Vec::as_slice).collect();
            for n in 0..=items.len() + 2 {
                assert_eq!(
                    kway_merge_sorted(&refs, n),
                    topn_full_sort(items.clone(), n),
                    "parts={parts} n={n}"
                );
            }
        }
    }

    #[test]
    fn kway_merge_tie_stability_across_lists() {
        // Equal scores interleave by ascending object id regardless of
        // which list holds them.
        let a = [(4, 0.5), (6, 0.5)];
        let b = [(1, 0.5), (9, 0.5)];
        let c = [(0, 0.5)];
        let merged = kway_merge_sorted(&[&a, &b, &c], 5);
        assert_eq!(
            merged,
            vec![(0, 0.5), (1, 0.5), (4, 0.5), (6, 0.5), (9, 0.5)]
        );
    }

    #[test]
    fn kway_merge_degenerate_inputs() {
        assert!(kway_merge_sorted(&[], 5).is_empty());
        let empty: &[(u32, f64)] = &[];
        assert!(kway_merge_sorted(&[empty, empty], 5).is_empty());
        let one = [(3, 0.2)];
        assert_eq!(kway_merge_sorted(&[empty, &one], 5), vec![(3, 0.2)]);
        assert!(kway_merge_sorted(&[&one], 0).is_empty());
    }

    #[test]
    fn negative_and_nan_scores() {
        let top = topn(vec![(0, -1.0), (1, f64::NAN), (2, -0.5)], 2);
        // total_cmp sorts NaN above numbers: it wins.
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1], (2, -0.5));
    }

    #[test]
    fn larger_n_than_stream() {
        let top = topn(stream(), 100);
        assert_eq!(top.len(), 6);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1 || w[1].1.is_nan()));
    }
}
