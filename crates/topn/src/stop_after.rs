//! STOP AFTER operator policies (Carey & Kossmann, VLDB 1998).
//!
//! "Reducing the braking distance of an SQL query engine": a `STOP AFTER n`
//! clause should stop producing work as soon as n results are guaranteed.
//! Two placement policies exist when a further predicate sits *above* the
//! scored input:
//!
//! * **Conservative** — run the predicate over the whole input, then take
//!   the top n survivors. Never restarts; maximal work.
//! * **Aggressive** — push the stop below the predicate: pull only the best
//!   `k = ⌈inflation · n / estimated_pass_rate⌉` tuples (by score), filter
//!   them, and *restart* with a deeper pull if fewer than n survive.
//!
//! The experiment harness sweeps the pass-rate estimate to reproduce the
//! win/lose regimes: a good estimate gives near-minimal work; an optimistic
//! one causes restarts ("braking too late").

use crate::heap::{topn, TopNHeap};

/// Outcome of a STOP AFTER execution.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct StopAfterReport {
    /// The top-n surviving `(object, score)` pairs, best first.
    pub items: Vec<(u32, f64)>,
    /// Tuples pulled through the (expensive) predicate.
    pub tuples_processed: usize,
    /// Number of restarts the aggressive policy performed (0 for
    /// conservative).
    pub restarts: usize,
}

/// Conservative policy: evaluate the predicate on every tuple, then top-n.
pub fn conservative<P>(input: &[(u32, f64)], n: usize, pred: P) -> StopAfterReport
where
    P: Fn(u32) -> bool,
{
    let mut processed = 0usize;
    let mut heap = TopNHeap::new(n);
    for &(obj, score) in input {
        processed += 1;
        if pred(obj) {
            heap.push(obj, score);
        }
    }
    StopAfterReport {
        items: heap.into_sorted_vec(),
        tuples_processed: processed,
        restarts: 0,
    }
}

/// Aggressive policy: sort input by score descending (done once, cost not
/// counted as predicate work), pull the best `k` tuples through the
/// predicate where `k = ⌈inflation · n / estimated_pass_rate⌉`; if fewer
/// than `n` survive, restart with `k` doubled, re-processing from the start
/// of the unprocessed region (already-processed tuples are *not* re-run —
/// the restart penalty here is the extra pull depth, matching the
/// re-optimization model of the paper).
pub fn aggressive<P>(
    input: &[(u32, f64)],
    n: usize,
    estimated_pass_rate: f64,
    inflation: f64,
    pred: P,
) -> StopAfterReport
where
    P: Fn(u32) -> bool,
{
    let est = estimated_pass_rate.clamp(1e-9, 1.0);
    let inflation = inflation.max(1.0);
    if n == 0 || input.is_empty() {
        return StopAfterReport {
            items: Vec::new(),
            tuples_processed: 0,
            restarts: 0,
        };
    }

    let mut sorted: Vec<(u32, f64)> = input.to_vec();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut k = ((inflation * n as f64 / est).ceil() as usize)
        .max(n)
        .min(sorted.len());
    let mut processed = 0usize;
    let mut restarts = 0usize;
    let mut survivors: Vec<(u32, f64)> = Vec::with_capacity(n);

    loop {
        while processed < k {
            let (obj, score) = sorted[processed];
            processed += 1;
            if pred(obj) {
                survivors.push((obj, score));
            }
        }
        if survivors.len() >= n || processed >= sorted.len() {
            break;
        }
        restarts += 1;
        k = (k * 2).min(sorted.len());
    }

    StopAfterReport {
        items: topn(survivors, n),
        tuples_processed: processed,
        restarts,
    }
}

/// Scan-stop: when the input is already ordered best-first and no predicate
/// applies, emitting the first `n` tuples is all the work there is.
pub fn scan_stop(sorted_input: &[(u32, f64)], n: usize) -> StopAfterReport {
    let take = n.min(sorted_input.len());
    StopAfterReport {
        items: sorted_input[..take].to_vec(),
        tuples_processed: take,
        restarts: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Vec<(u32, f64)> {
        (0..100u32)
            .map(|i| (i, f64::from(999 - i * 7 % 1000)))
            .collect()
    }

    #[test]
    fn conservative_processes_everything() {
        let inp = input();
        let r = conservative(&inp, 5, |obj| obj % 2 == 0);
        assert_eq!(r.tuples_processed, 100);
        assert_eq!(r.restarts, 0);
        assert_eq!(r.items.len(), 5);
        assert!(r.items.iter().all(|&(o, _)| o % 2 == 0));
    }

    #[test]
    fn aggressive_with_good_estimate_processes_little() {
        let inp = input();
        // Half the tuples pass; estimate is exact.
        let r = aggressive(&inp, 5, 0.5, 1.5, |obj| obj % 2 == 0);
        assert!(r.items.len() == 5);
        assert_eq!(r.restarts, 0);
        assert!(r.tuples_processed <= 20, "processed {}", r.tuples_processed);
    }

    #[test]
    fn aggressive_restarts_on_bad_estimate() {
        let inp = input();
        // Only 10% pass but the optimizer believes 90% do.
        let r = aggressive(&inp, 8, 0.9, 1.0, |obj| obj % 10 == 0);
        assert!(r.restarts >= 1, "expected restarts, got {}", r.restarts);
        assert_eq!(r.items.len(), 8);
    }

    #[test]
    fn policies_agree_on_results() {
        let inp = input();
        let pred = |obj: u32| obj.is_multiple_of(3);
        let cons = conservative(&inp, 7, pred);
        let aggr = aggressive(&inp, 7, 0.33, 1.2, pred);
        assert_eq!(cons.items, aggr.items);
    }

    #[test]
    fn aggressive_handles_unsatisfiable_predicate() {
        let inp = input();
        let r = aggressive(&inp, 5, 0.5, 1.0, |_| false);
        assert!(r.items.is_empty());
        assert_eq!(r.tuples_processed, 100); // had to look at everything
    }

    #[test]
    fn scan_stop_touches_only_n() {
        let mut inp = input();
        inp.sort_by(|a, b| b.1.total_cmp(&a.1));
        let r = scan_stop(&inp, 10);
        assert_eq!(r.items.len(), 10);
        assert_eq!(r.tuples_processed, 10);
        assert_eq!(r.items, inp[..10].to_vec());
    }

    #[test]
    fn scan_stop_beyond_input() {
        let inp = vec![(1u32, 0.5)];
        let r = scan_stop(&inp, 10);
        assert_eq!(r.items.len(), 1);
    }

    #[test]
    fn zero_n_everywhere() {
        let inp = input();
        assert!(conservative(&inp, 0, |_| true).items.is_empty());
        assert!(aggressive(&inp, 0, 0.5, 1.0, |_| true).items.is_empty());
        assert!(scan_stop(&inp, 0).items.is_empty());
    }

    #[test]
    fn conservative_empty_input() {
        let r = conservative(&[], 5, |_| true);
        assert!(r.items.is_empty());
        assert_eq!(r.tuples_processed, 0);
    }
}
