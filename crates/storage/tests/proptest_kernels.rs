//! Property-based tests of the BAT kernel invariants.

use proptest::prelude::*;

use moa_storage::ops::{
    antijoin, firstn, group_aggregate, scan_select, select_range, semijoin, sort_by_tail,
    sum_by_head_dense, AggFn, Direction,
};
use moa_storage::{Bat, Column, Scalar, SparseIndex};

fn u32_bat(values: Vec<u32>) -> Bat {
    Bat::dense(Column::from(values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn select_paths_agree(values in proptest::collection::vec(0u32..1000, 0..200),
                          lo in 0u32..1000, span in 0u32..500) {
        let hi = lo.saturating_add(span);
        let unsorted = u32_bat(values.clone());
        let (scan, _) = scan_select(&unsorted, &Scalar::U32(lo), &Scalar::U32(hi)).unwrap();

        let mut sorted_values = values;
        sorted_values.sort_unstable();
        let sorted = u32_bat(sorted_values);
        let fast = select_range(&sorted, &Scalar::U32(lo), &Scalar::U32(hi)).unwrap();
        let (slow, _) = scan_select(&sorted, &Scalar::U32(lo), &Scalar::U32(hi)).unwrap();

        // On the sorted input the binary-search and scan paths agree
        // exactly; on any input the scan result values are within range.
        prop_assert_eq!(fast.tail(), slow.tail());
        prop_assert_eq!(fast.head_oids(), slow.head_oids());
        for v in scan.tail().as_u32().unwrap() {
            prop_assert!((lo..=hi).contains(v));
        }
    }

    #[test]
    fn sparse_index_agrees_with_select(
        mut values in proptest::collection::vec(0u32..500, 1..300),
        block in 1usize..64,
        lo in 0u32..500, span in 0u32..200,
    ) {
        values.sort_unstable();
        let hi = lo.saturating_add(span);
        let bat = u32_bat(values);
        let idx = SparseIndex::build(&bat, block).unwrap();
        let (via_index, range) = idx
            .select_range(&bat, &Scalar::U32(lo), &Scalar::U32(hi))
            .unwrap();
        let direct = select_range(&bat, &Scalar::U32(lo), &Scalar::U32(hi)).unwrap();
        prop_assert_eq!(via_index.head_oids(), direct.head_oids());
        prop_assert!(range.end >= range.start);
        prop_assert!(range.end <= bat.len());
    }

    #[test]
    fn firstn_is_sort_prefix(values in proptest::collection::vec(0u32..1000, 0..150),
                             n in 0usize..40) {
        let bat = u32_bat(values);
        for dir in [Direction::Asc, Direction::Desc] {
            let sorted = sort_by_tail(&bat, dir).unwrap();
            let take = n.min(bat.len());
            let expect = sorted.slice(0, take).unwrap();
            let got = firstn(&bat, n, dir).unwrap();
            prop_assert_eq!(got.head_oids(), expect.head_oids());
            prop_assert_eq!(got.tail(), expect.tail());
        }
    }

    #[test]
    fn semijoin_antijoin_partition(
        left_heads in proptest::collection::vec(0u32..50, 0..100),
        right_heads in proptest::collection::vec(0u32..50, 0..100),
    ) {
        let left = Bat::new(
            left_heads.clone(),
            Column::from(vec![1.0f64; left_heads.len()]),
        ).unwrap();
        let right = Bat::new(
            right_heads.clone(),
            Column::from(vec![0u32; right_heads.len()]),
        ).unwrap();
        let semi = semijoin(&left, &right).unwrap();
        let anti = antijoin(&left, &right).unwrap();
        prop_assert_eq!(semi.len() + anti.len(), left.len());
        let rights: std::collections::HashSet<u32> = right_heads.into_iter().collect();
        for oid in semi.head_oids() {
            prop_assert!(rights.contains(&oid));
        }
        for oid in anti.head_oids() {
            prop_assert!(!rights.contains(&oid));
        }
    }

    #[test]
    fn dense_and_hash_aggregation_agree(
        heads in proptest::collection::vec(0u32..20, 0..100),
        seedless_scores in proptest::collection::vec(0.0f64..10.0, 0..100),
    ) {
        let n = heads.len().min(seedless_scores.len());
        let bat = Bat::new(
            heads[..n].to_vec(),
            Column::from(seedless_scores[..n].to_vec()),
        ).unwrap();
        let dense = sum_by_head_dense(&bat, 20).unwrap();
        let hashed = group_aggregate(&bat, AggFn::Sum).unwrap();
        for pos in 0..hashed.len() {
            let oid = hashed.head_oid(pos).unwrap();
            let v = hashed.tail_value(pos).unwrap().as_f64().unwrap();
            prop_assert!((v - dense[oid as usize]).abs() < 1e-9);
        }
        // Dense entries without a group are exactly zero.
        let grouped: std::collections::HashSet<u32> = hashed.head_oids().into_iter().collect();
        for (oid, &v) in dense.iter().enumerate() {
            if !grouped.contains(&(oid as u32)) {
                prop_assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn sortedness_props_are_truthful(values in proptest::collection::vec(0u32..100, 0..100)) {
        let bat = u32_bat(values.clone());
        let mut sorted = values;
        sorted.sort_unstable();
        let is_sorted = bat.tail().as_u32().unwrap() == sorted.as_slice();
        prop_assert_eq!(bat.props().tail_sorted_asc, is_sorted);
        // Sorting always yields the property.
        let after = sort_by_tail(&bat, Direction::Asc).unwrap();
        prop_assert!(after.props().tail_sorted_asc);
    }
}
