//! Property tests pinning the word-parallel bit-pack kernels to the
//! scalar semantics, bit for bit.
//!
//! The block-compressed posting store (and through it every query
//! engine's differential oracle) rests on `pack_into` → `unpack_*`
//! being lossless at every width. The width-specialized kernels decode
//! 4–8 lanes per iteration with branch-free two-word windows, so the
//! properties deliberately sweep the shapes where lane math goes wrong:
//! widths that divide 64 and widths that straddle words, counts that
//! end mid-word or mid-lane-group (the partial final block), width-0
//! runs (equal gaps), and arbitrary unaligned sub-ranges.

use proptest::prelude::*;

use moa_storage::pack::{
    bits_for, pack_into, unpack_deltas_prefix_sum, unpack_from, unpack_one, unpack_slice, words_for,
};

/// Deterministic values that exactly fit `width` bits (xorshift).
fn values_of_width(n: usize, width: u8, seed: u64) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mask = if width >= 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    (0..n)
        .map(|i| {
            let v = (next() & u64::from(u32::MAX)) as u32 & mask;
            // Force at least one value to use the full width so bits_for
            // round-trips (keeps the width honest, not an over-estimate).
            if i == 0 && width > 0 {
                v | (1 << (width - 1))
            } else {
                v
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// pack → bulk unpack is the identity at every width 0..=32,
    /// including counts that end mid-word and mid-lane-group.
    #[test]
    fn bulk_unpack_roundtrips_every_width(
        n in 0usize..700,
        width in 0u8..=32,
        seed in 0u64..100_000,
    ) {
        let values = if width == 0 { vec![0u32; n] } else { values_of_width(n, width, seed) };
        let mut words = Vec::new();
        pack_into(&values, width, &mut words);
        prop_assert_eq!(words.len(), words_for(n, width));
        let mut out = vec![u32::MAX; n];
        unpack_from(&words, width, n, &mut out);
        prop_assert_eq!(&out, &values);
    }

    /// Point lookups agree with the bulk decode at every index, at
    /// every width — including the last value of a partial final word.
    #[test]
    fn point_unpack_agrees_with_bulk(
        n in 1usize..300,
        width in 1u8..=32,
        seed in 0u64..100_000,
    ) {
        let values = values_of_width(n, width, seed);
        let mut words = Vec::new();
        pack_into(&values, width, &mut words);
        for (i, &want) in values.iter().enumerate() {
            prop_assert_eq!(unpack_one(&words, width, i), want, "index {}", i);
        }
    }

    /// Range decode agrees with the bulk decode on arbitrary unaligned
    /// windows (the mini-block tf path decodes 16-value windows at any
    /// offset).
    #[test]
    fn slice_unpack_agrees_with_bulk_on_any_window(
        n in 1usize..400,
        width in 0u8..=32,
        start_frac in 0.0f64..1.0,
        len in 1usize..48,
        seed in 0u64..100_000,
    ) {
        let values = if width == 0 { vec![0u32; n] } else { values_of_width(n, width, seed) };
        let mut words = Vec::new();
        pack_into(&values, width, &mut words);
        let start = ((start_frac * n as f64) as usize).min(n - 1);
        let count = len.min(n - start);
        let mut out = vec![u32::MAX; count];
        unpack_slice(&words, width, start, count, &mut out);
        prop_assert_eq!(&out[..], &values[start..start + count]);
    }

    /// The fused delta-decode + prefix-sum kernel reproduces the
    /// original ascending document ids exactly: gaps in [1, max_gap]
    /// encode as width-packed (gap - 1) deltas, and max_gap = 1 forces
    /// the width-0 arithmetic-fill path (consecutive ids, no payload).
    #[test]
    fn fused_prefix_sum_recovers_ascending_ids(
        n in 1usize..700,
        first in 0u32..1_000_000,
        max_gap in 1u32..50_000,
        seed in 0u64..100_000,
    ) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut docs = Vec::with_capacity(n);
        let mut doc = first;
        for i in 0..n {
            if i > 0 {
                doc += 1 + (next() % u64::from(max_gap)) as u32;
            }
            docs.push(doc);
        }
        // The block encoder stores `gap - 1` deltas with a leading 0
        // slot, so a run of n docs packs n delta values.
        let mut deltas = Vec::with_capacity(n);
        deltas.push(0u32);
        deltas.extend(docs.windows(2).map(|w| w[1] - w[0] - 1));
        let width = bits_for(deltas.iter().copied().max().unwrap_or(0));
        let mut words = Vec::new();
        pack_into(&deltas, width, &mut words);

        let mut fused = vec![u32::MAX; n];
        unpack_deltas_prefix_sum(&words, width, n, first, &mut fused);
        prop_assert_eq!(&fused, &docs);

        // And it is exactly the two-pass decode: bulk-unpack the deltas,
        // then the sequential prefix sum.
        let mut two_pass = vec![u32::MAX; n];
        unpack_from(&words, width, n, &mut two_pass);
        two_pass[0] = first;
        for i in 1..n {
            two_pass[i] = two_pass[i - 1] + two_pass[i] + 1;
        }
        prop_assert_eq!(&fused, &two_pass);
    }
}
