//! Error types for the storage kernel.

use std::fmt;

use crate::column::ColumnType;

/// Errors produced by BAT kernel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operation received a column of the wrong type.
    TypeMismatch {
        /// The type the operation required.
        expected: ColumnType,
        /// The type that was actually supplied.
        found: ColumnType,
    },
    /// Two columns that must be aligned have different lengths.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// A positional access was outside the BAT.
    OutOfBounds {
        /// The requested position.
        pos: usize,
        /// The number of BUNs in the BAT.
        len: usize,
    },
    /// A named BAT was not present in the catalog.
    UnknownBat(String),
    /// An operation that requires a sorted tail received an unsorted one.
    NotSorted,
    /// An operation that requires a non-empty input received an empty one.
    Empty,
    /// A scalar of the wrong variant was supplied (e.g. pushing a string
    /// into a numeric column).
    ScalarType {
        /// The column type of the target.
        expected: ColumnType,
    },
    /// Catalog already contains a BAT under this name.
    DuplicateBat(String),
    /// Invalid argument (with human-readable context).
    InvalidArgument(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            StorageError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StorageError::OutOfBounds { pos, len } => {
                write!(f, "position {pos} out of bounds for BAT of {len} BUNs")
            }
            StorageError::UnknownBat(name) => write!(f, "unknown BAT: {name}"),
            StorageError::NotSorted => write!(f, "operation requires a tail-sorted BAT"),
            StorageError::Empty => write!(f, "operation requires a non-empty BAT"),
            StorageError::ScalarType { expected } => {
                write!(f, "scalar does not match column type {expected}")
            }
            StorageError::DuplicateBat(name) => write!(f, "BAT already registered: {name}"),
            StorageError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_type_mismatch() {
        let e = StorageError::TypeMismatch {
            expected: ColumnType::U32,
            found: ColumnType::F64,
        };
        assert_eq!(e.to_string(), "type mismatch: expected u32, found f64");
    }

    #[test]
    fn display_unknown_bat() {
        assert_eq!(
            StorageError::UnknownBat("scores".into()).to_string(),
            "unknown BAT: scores"
        );
    }

    #[test]
    fn display_out_of_bounds() {
        let e = StorageError::OutOfBounds { pos: 7, len: 3 };
        assert_eq!(e.to_string(), "position 7 out of bounds for BAT of 3 BUNs");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&StorageError::Empty);
    }
}
