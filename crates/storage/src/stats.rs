//! Column statistics: summaries and histograms.
//!
//! Statistics serve two masters in this reproduction:
//!
//! 1. the cost model of the Moa optimizer (cardinality and selectivity
//!    estimation — the paper's Step 3), and
//! 2. the Donjerkovic–Ramakrishnan probabilistic top-N, which picks a score
//!    cutoff from a histogram such that at least N tuples survive with the
//!    requested confidence.

use crate::error::{Result, StorageError};

/// Simple numeric summary of a value set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericStats {
    /// Number of values.
    pub count: usize,
    /// Minimum (NaN-free inputs assumed; NaNs are filtered out).
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl NumericStats {
    /// Compute summary statistics; NaNs are ignored. Errors when no finite
    /// values remain.
    pub fn build(values: &[f64]) -> Result<NumericStats> {
        let mut count = 0usize;
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for &v in values {
            if v.is_nan() {
                continue;
            }
            count += 1;
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        if count == 0 {
            return Err(StorageError::Empty);
        }
        Ok(NumericStats {
            count,
            min,
            max,
            mean: sum / count as f64,
        })
    }
}

/// Equi-width histogram over `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiWidthHistogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
}

impl EquiWidthHistogram {
    /// Build with `buckets` equal-width buckets. NaNs are ignored.
    pub fn build(values: &[f64], buckets: usize) -> Result<EquiWidthHistogram> {
        if buckets == 0 {
            return Err(StorageError::InvalidArgument(
                "bucket count must be positive".into(),
            ));
        }
        let stats = NumericStats::build(values)?;
        let mut counts = vec![0u64; buckets];
        let width = (stats.max - stats.min).max(f64::MIN_POSITIVE);
        let mut total = 0u64;
        for &v in values {
            if v.is_nan() {
                continue;
            }
            let b = (((v - stats.min) / width) * buckets as f64) as usize;
            counts[b.min(buckets - 1)] += 1;
            total += 1;
        }
        Ok(EquiWidthHistogram {
            min: stats.min,
            max: stats.max,
            counts,
            total,
        })
    }

    /// Total number of values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Estimate how many values are `>= x`, assuming uniform spread inside
    /// each bucket.
    pub fn estimate_count_ge(&self, x: f64) -> f64 {
        if x <= self.min {
            return self.total as f64;
        }
        if x > self.max {
            return 0.0;
        }
        let buckets = self.counts.len() as f64;
        let width = (self.max - self.min).max(f64::MIN_POSITIVE) / buckets;
        let pos = (x - self.min) / width;
        let idx = (pos as usize).min(self.counts.len() - 1);
        let frac_into = pos - idx as f64;
        let partial = self.counts[idx] as f64 * (1.0 - frac_into).clamp(0.0, 1.0);
        let above: u64 = self.counts[idx + 1..].iter().sum();
        partial + above as f64
    }

    /// Estimate the fraction of values in `[lo, hi]`.
    pub fn estimate_selectivity(&self, lo: f64, hi: f64) -> f64 {
        if self.total == 0 || hi < lo {
            return 0.0;
        }
        let ge_lo = self.estimate_count_ge(lo);
        let gt_hi = self.estimate_count_ge(hi) - self.estimate_count_at(hi);
        ((ge_lo - gt_hi) / self.total as f64).clamp(0.0, 1.0)
    }

    fn estimate_count_at(&self, x: f64) -> f64 {
        // Density at x: bucket count / bucket capacity of distinct positions.
        if x < self.min || x > self.max || self.total == 0 {
            return 0.0;
        }
        0.0 // treat point mass as negligible under the uniform assumption
    }

    /// Smallest cutoff `c` such that the estimated number of values `>= c`
    /// is at least `n`, i.e. scanning values `>= c` is expected to yield at
    /// least `n` survivors. Returns `min` when `n` exceeds the population.
    pub fn cutoff_for_at_least(&self, n: usize) -> f64 {
        if n as u64 >= self.total {
            return self.min;
        }
        // Walk buckets from the top, accumulating counts.
        let buckets = self.counts.len();
        let width = (self.max - self.min).max(f64::MIN_POSITIVE) / buckets as f64;
        let mut acc = 0u64;
        for i in (0..buckets).rev() {
            let c = self.counts[i];
            if acc + c >= n as u64 {
                // Interpolate inside bucket i: need (n - acc) values from it.
                let need = (n as u64 - acc) as f64;
                let frac = if c == 0 { 0.0 } else { need / c as f64 };
                let hi_edge = self.min + width * (i as f64 + 1.0);
                return (hi_edge - frac * width).max(self.min);
            }
            acc += c;
        }
        self.min
    }
}

/// Equi-depth histogram: bucket boundaries at value quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    /// `boundaries[i]` is the upper edge of bucket `i`; ascending.
    boundaries: Vec<f64>,
    /// Values per bucket (equal by construction up to rounding).
    depth: f64,
    total: usize,
    min: f64,
}

impl EquiDepthHistogram {
    /// Build with `buckets` equal-depth buckets; sorts a copy of the input.
    pub fn build(values: &[f64], buckets: usize) -> Result<EquiDepthHistogram> {
        if buckets == 0 {
            return Err(StorageError::InvalidArgument(
                "bucket count must be positive".into(),
            ));
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return Err(StorageError::Empty);
        }
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mut boundaries = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            let idx = ((b * n) / buckets).saturating_sub(1).min(n - 1);
            boundaries.push(sorted[idx]);
        }
        Ok(EquiDepthHistogram {
            boundaries,
            depth: n as f64 / buckets as f64,
            total: n,
            min: sorted[0],
        })
    }

    /// Total number of values.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Estimate how many values are `>= x` by locating the containing bucket.
    pub fn estimate_count_ge(&self, x: f64) -> f64 {
        if x <= self.min {
            return self.total as f64;
        }
        let nb = self.boundaries.len();
        // Buckets strictly below x contribute nothing.
        let mut below = 0usize;
        while below < nb && self.boundaries[below] < x {
            below += 1;
        }
        if below >= nb {
            return 0.0;
        }
        // Interpolate inside bucket `below`.
        let lo_edge = if below == 0 {
            self.min
        } else {
            self.boundaries[below - 1]
        };
        let hi_edge = self.boundaries[below];
        let frac_above = if hi_edge > lo_edge {
            ((hi_edge - x) / (hi_edge - lo_edge)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        self.depth * frac_above + self.depth * (nb - below - 1) as f64
    }

    /// Quantile of the distribution at fraction `q` in `[0,1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if self.boundaries.is_empty() {
            return self.min;
        }
        let idx = ((q * self.boundaries.len() as f64).ceil() as usize).saturating_sub(1);
        self.boundaries[idx.min(self.boundaries.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_stats_basic() {
        let s = NumericStats::build(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
    }

    #[test]
    fn numeric_stats_skip_nan_and_reject_empty() {
        let s = NumericStats::build(&[f64::NAN, 2.0]).unwrap();
        assert_eq!(s.count, 1);
        assert!(NumericStats::build(&[]).is_err());
        assert!(NumericStats::build(&[f64::NAN]).is_err());
    }

    #[test]
    fn equi_width_counts() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let h = EquiWidthHistogram::build(&values, 10).unwrap();
        assert_eq!(h.total(), 100);
        assert_eq!(h.buckets(), 10);
        // ~50 values are >= 50.
        let est = h.estimate_count_ge(50.0);
        assert!((est - 50.0).abs() <= 11.0, "est={est}");
    }

    #[test]
    fn equi_width_extremes() {
        let values: Vec<f64> = (0..10).map(f64::from).collect();
        let h = EquiWidthHistogram::build(&values, 4).unwrap();
        assert_eq!(h.estimate_count_ge(-5.0), 10.0);
        assert_eq!(h.estimate_count_ge(100.0), 0.0);
    }

    #[test]
    fn equi_width_selectivity() {
        let values: Vec<f64> = (0..1000).map(f64::from).collect();
        let h = EquiWidthHistogram::build(&values, 50).unwrap();
        let sel = h.estimate_selectivity(250.0, 750.0);
        assert!((sel - 0.5).abs() < 0.05, "sel={sel}");
        assert_eq!(h.estimate_selectivity(10.0, 5.0), 0.0);
    }

    #[test]
    fn cutoff_yields_enough_survivors() {
        let values: Vec<f64> = (0..1000).map(f64::from).collect();
        let h = EquiWidthHistogram::build(&values, 100).unwrap();
        for n in [1usize, 10, 100, 500] {
            let c = h.cutoff_for_at_least(n);
            let actual = values.iter().filter(|&&v| v >= c).count();
            assert!(
                actual >= n,
                "cutoff {c} for n={n} yields only {actual} survivors"
            );
        }
    }

    #[test]
    fn cutoff_for_huge_n_is_min() {
        let values: Vec<f64> = (0..10).map(f64::from).collect();
        let h = EquiWidthHistogram::build(&values, 4).unwrap();
        assert_eq!(h.cutoff_for_at_least(10_000), 0.0);
    }

    #[test]
    fn equi_depth_quantiles() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let h = EquiDepthHistogram::build(&values, 10).unwrap();
        assert_eq!(h.total(), 100);
        assert!((h.quantile(0.5) - 50.0).abs() <= 10.0);
        assert!((h.quantile(1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn equi_depth_count_ge() {
        let values: Vec<f64> = (0..1000).map(f64::from).collect();
        let h = EquiDepthHistogram::build(&values, 20).unwrap();
        let est = h.estimate_count_ge(900.0);
        assert!((est - 100.0).abs() <= 50.0, "est={est}");
        assert_eq!(h.estimate_count_ge(-1.0), 1000.0);
        assert_eq!(h.estimate_count_ge(1001.0), 0.0);
    }

    #[test]
    fn histograms_reject_zero_buckets_and_empty() {
        assert!(EquiWidthHistogram::build(&[1.0], 0).is_err());
        assert!(EquiDepthHistogram::build(&[1.0], 0).is_err());
        assert!(EquiWidthHistogram::build(&[], 4).is_err());
        assert!(EquiDepthHistogram::build(&[], 4).is_err());
    }

    #[test]
    fn constant_distribution() {
        let values = vec![5.0; 64];
        let h = EquiWidthHistogram::build(&values, 8).unwrap();
        assert_eq!(h.estimate_count_ge(5.0), 64.0);
        assert_eq!(h.estimate_count_ge(5.1), 0.0);
        let d = EquiDepthHistogram::build(&values, 8).unwrap();
        assert_eq!(d.quantile(0.5), 5.0);
    }
}
