//! Non-dense (sparse) indexes.
//!
//! The paper's Step 1 proposes "a non-dense index in the system to speed up
//! processing the large fragment". A [`SparseIndex`] stores one `(value,
//! position)` anchor per fixed-size block of a tail-sorted BAT; a range
//! lookup binary-searches the anchors and then scans at most the covering
//! blocks instead of the whole BAT. Blocks touched are reported so
//! experiments can show I/O-proportional work, not just wall time.

use crate::bat::Bat;
use crate::column::Scalar;
use crate::error::{Result, StorageError};

/// A sparse index over a tail-sorted BAT: one anchor per `block_size` BUNs.
#[derive(Debug, Clone)]
pub struct SparseIndex {
    /// First tail value of each block.
    anchors: Vec<Scalar>,
    /// Start position of each block.
    starts: Vec<usize>,
    block_size: usize,
    len: usize,
}

/// Result of a sparse-index range lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexRange {
    /// First position that may contain a matching value.
    pub start: usize,
    /// One past the last position that may contain a matching value.
    pub end: usize,
    /// Number of index blocks covered by `[start, end)`.
    pub blocks_touched: usize,
}

impl SparseIndex {
    /// Build a sparse index with the given block size over a tail-sorted BAT.
    pub fn build(bat: &Bat, block_size: usize) -> Result<SparseIndex> {
        if block_size == 0 {
            return Err(StorageError::InvalidArgument(
                "block_size must be positive".into(),
            ));
        }
        if !bat.props().tail_sorted_asc {
            return Err(StorageError::NotSorted);
        }
        let mut anchors = Vec::new();
        let mut starts = Vec::new();
        let mut pos = 0;
        while pos < bat.len() {
            anchors.push(bat.tail_value(pos)?);
            starts.push(pos);
            pos += block_size;
        }
        Ok(SparseIndex {
            anchors,
            starts,
            block_size,
            len: bat.len(),
        })
    }

    /// Number of anchors (blocks).
    pub fn blocks(&self) -> usize {
        self.anchors.len()
    }

    /// Index payload size in bytes (anchors + positions), for the volume
    /// accounting in the fragmentation experiments.
    pub fn byte_size(&self) -> usize {
        self.anchors
            .iter()
            .map(|a| match a {
                Scalar::Str(s) => s.len() + std::mem::size_of::<String>(),
                _ => 8,
            })
            .sum::<usize>()
            + self.starts.len() * std::mem::size_of::<usize>()
    }

    /// Conservative position range whose values may lie in `[lo, hi]`.
    ///
    /// The returned range starts at the last block whose anchor is `<= lo`
    /// and ends at the first block whose anchor is `> hi` — so a subsequent
    /// scan touches only the covering blocks.
    pub fn lookup_range(&self, lo: &Scalar, hi: &Scalar) -> Result<IndexRange> {
        if self.anchors.is_empty() {
            return Ok(IndexRange {
                start: 0,
                end: 0,
                blocks_touched: 0,
            });
        }
        // Validate types once against the first anchor.
        self.anchors[0].total_cmp(lo)?;
        self.anchors[0].total_cmp(hi)?;

        // First block that could contain `lo`: one before the first anchor
        // >= lo. (Strictly-less predicate: runs of duplicate anchors equal
        // to `lo` may all contain matching values, so we must not skip
        // past them.)
        let first_ge_lo = partition(&self.anchors, |a| {
            a.total_cmp(lo)
                .map(|o| o == std::cmp::Ordering::Less)
                .unwrap_or(true)
        });
        let start_block = first_ge_lo.saturating_sub(1);
        // First block whose anchor exceeds hi ends the range.
        let first_gt_hi = partition(&self.anchors, |a| {
            a.total_cmp(hi)
                .map(|o| o != std::cmp::Ordering::Greater)
                .unwrap_or(true)
        });
        let end_block = first_gt_hi; // exclusive
        if end_block <= start_block {
            // Range is empty but may still need one block probe.
            let start = self.starts[start_block];
            return Ok(IndexRange {
                start,
                end: start,
                blocks_touched: 0,
            });
        }
        let start = self.starts[start_block];
        let end = if end_block < self.starts.len() {
            self.starts[end_block]
        } else {
            self.len
        };
        Ok(IndexRange {
            start,
            end,
            blocks_touched: end_block - start_block,
        })
    }

    /// Scan the indexed BAT for `[lo, hi]`, touching only covering blocks.
    /// Returns the matching BUNs and the lookup profile. `bat` must be the
    /// BAT the index was built over.
    pub fn select_range(&self, bat: &Bat, lo: &Scalar, hi: &Scalar) -> Result<(Bat, IndexRange)> {
        if bat.len() != self.len {
            return Err(StorageError::LengthMismatch {
                left: bat.len(),
                right: self.len,
            });
        }
        let range = self.lookup_range(lo, hi)?;
        let window = bat.slice(range.start, range.end)?;
        let (hits, _) = crate::ops::select::scan_select(&window, lo, hi)?;
        Ok((hits, range))
    }

    /// The configured block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }
}

fn partition(anchors: &[Scalar], pred: impl Fn(&Scalar) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, anchors.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(&anchors[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::ops::select::select_range;

    fn sorted_bat(n: u32) -> Bat {
        Bat::dense(Column::from((0..n).map(|i| i * 2).collect::<Vec<u32>>()))
    }

    #[test]
    fn build_requires_sorted() {
        let b = Bat::dense(Column::from(vec![3u32, 1]));
        assert!(matches!(
            SparseIndex::build(&b, 4),
            Err(StorageError::NotSorted)
        ));
    }

    #[test]
    fn build_rejects_zero_block() {
        let b = sorted_bat(10);
        assert!(SparseIndex::build(&b, 0).is_err());
    }

    #[test]
    fn block_count() {
        let b = sorted_bat(10);
        let idx = SparseIndex::build(&b, 4).unwrap();
        assert_eq!(idx.blocks(), 3); // 4 + 4 + 2
    }

    #[test]
    fn lookup_agrees_with_full_select() {
        let b = sorted_bat(100); // values 0,2,..,198
        let idx = SparseIndex::build(&b, 8).unwrap();
        for (lo, hi) in [(0u32, 10u32), (13, 57), (150, 300), (201, 250), (0, 198)] {
            let (hits, _) = idx
                .select_range(&b, &Scalar::U32(lo), &Scalar::U32(hi))
                .unwrap();
            let expect = select_range(&b, &Scalar::U32(lo), &Scalar::U32(hi)).unwrap();
            assert_eq!(hits.head_oids(), expect.head_oids(), "range {lo}..={hi}");
        }
    }

    #[test]
    fn lookup_touches_few_blocks() {
        let b = sorted_bat(1000);
        let idx = SparseIndex::build(&b, 10).unwrap();
        let range = idx
            .lookup_range(&Scalar::U32(500), &Scalar::U32(510))
            .unwrap();
        assert!(
            range.blocks_touched <= 3,
            "touched {}",
            range.blocks_touched
        );
        assert!(range.end - range.start <= 30);
    }

    #[test]
    fn empty_bat_lookup() {
        let b = Bat::dense(Column::from(Vec::<u32>::new()));
        let idx = SparseIndex::build(&b, 4).unwrap();
        let r = idx.lookup_range(&Scalar::U32(1), &Scalar::U32(2)).unwrap();
        assert_eq!(r.blocks_touched, 0);
        assert_eq!((r.start, r.end), (0, 0));
    }

    #[test]
    fn mismatched_bat_is_rejected() {
        let b = sorted_bat(10);
        let idx = SparseIndex::build(&b, 4).unwrap();
        let other = sorted_bat(5);
        assert!(idx
            .select_range(&other, &Scalar::U32(0), &Scalar::U32(4))
            .is_err());
    }

    #[test]
    fn range_below_and_above_all_values() {
        let b = Bat::dense(Column::from(vec![10u32, 20, 30, 40]));
        let idx = SparseIndex::build(&b, 2).unwrap();
        let (hits, _) = idx
            .select_range(&b, &Scalar::U32(0), &Scalar::U32(5))
            .unwrap();
        assert!(hits.is_empty());
        let (hits, _) = idx
            .select_range(&b, &Scalar::U32(41), &Scalar::U32(99))
            .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn byte_size_is_small_relative_to_bat() {
        let b = sorted_bat(10_000);
        let idx = SparseIndex::build(&b, 64).unwrap();
        assert!(idx.byte_size() < b.byte_size() / 2);
    }
}
