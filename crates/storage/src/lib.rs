//! # moa-storage — a main-memory Binary Association Table kernel
//!
//! This crate is the bottom layer of the Moa top-N reproduction: a
//! MonetDB-style main-memory column kernel. The structured object algebra in
//! `moa-core` *flattens* its expressions onto operations over [`bat::Bat`]s
//! (binary tables of `(oid, value)` pairs), exactly as Moa flattened onto
//! MonetDB's MIL [Boncz, Wilschut & Kersten, ICDE 1998].
//!
//! Provided kernels:
//!
//! * [`ops::select`] — range/point selection, with a binary-search fast path
//!   on sorted tails (the physical payoff of ordering knowledge),
//! * [`ops::join`] — fetch join (positional), hash join, semijoin, antijoin,
//! * [`ops::sort`] — stable sort, argsort, and bounded `firstn` (sort-stop),
//! * [`ops::group`] — grouped aggregation (dense and hash-based),
//! * [`ops::arith`] — multiplexed element-wise arithmetic,
//! * [`index`] — non-dense (sparse) block indexes over sorted BATs,
//! * [`pack`] — fixed-width bit-packing kernels (the physical substrate of
//!   the block-compressed posting storage in `moa-ir`),
//! * [`stats`] — numeric summaries and equi-width/equi-depth histograms,
//! * [`catalog`] — a thread-safe named BAT registry.
//!
//! Everything is deterministic and allocation-conscious; no I/O — "MM" here
//! follows the paper's substrate, a *main-memory* kernel hosting
//! *multi-media* retrieval structures.

#![warn(missing_docs)]

pub mod bat;
pub mod catalog;
pub mod column;
pub mod error;
pub mod index;
pub mod ops;
pub mod pack;
pub mod stats;

pub use bat::{Bat, Head, Props};
pub use catalog::Catalog;
pub use column::{Column, ColumnType, Scalar};
pub use error::{Result, StorageError};
pub use index::{IndexRange, SparseIndex};
pub use stats::{EquiDepthHistogram, EquiWidthHistogram, NumericStats};
