//! Typed column vectors: the tail storage of a BAT.
//!
//! A [`Column`] is a densely packed, homogeneously typed vector. Columns are
//! deliberately simple — the kernel operations in [`crate::ops`] are written
//! against columns and BATs, mirroring how MonetDB's MIL kernel operates on
//! binary tables.

use std::fmt;

use crate::error::{Result, StorageError};

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 32-bit unsigned integers (object ids, term ids, term frequencies).
    U32,
    /// 64-bit unsigned integers (counters, volumes).
    U64,
    /// 64-bit floats (scores, probabilities).
    F64,
    /// UTF-8 strings (terms, names).
    Str,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::U32 => "u32",
            ColumnType::U64 => "u64",
            ColumnType::F64 => "f64",
            ColumnType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A single value held by a column.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A `u32` value.
    U32(u32),
    /// A `u64` value.
    U64(u64),
    /// An `f64` value.
    F64(f64),
    /// A string value.
    Str(String),
}

impl Scalar {
    /// The column type this scalar belongs to.
    pub fn ty(&self) -> ColumnType {
        match self {
            Scalar::U32(_) => ColumnType::U32,
            Scalar::U64(_) => ColumnType::U64,
            Scalar::F64(_) => ColumnType::F64,
            Scalar::Str(_) => ColumnType::Str,
        }
    }

    /// Total order over scalars of the same type. `f64` uses `total_cmp`,
    /// so NaN sorts after all other values and comparisons never panic.
    pub fn total_cmp(&self, other: &Scalar) -> Result<std::cmp::Ordering> {
        match (self, other) {
            (Scalar::U32(a), Scalar::U32(b)) => Ok(a.cmp(b)),
            (Scalar::U64(a), Scalar::U64(b)) => Ok(a.cmp(b)),
            (Scalar::F64(a), Scalar::F64(b)) => Ok(a.total_cmp(b)),
            (Scalar::Str(a), Scalar::Str(b)) => Ok(a.cmp(b)),
            _ => Err(StorageError::TypeMismatch {
                expected: self.ty(),
                found: other.ty(),
            }),
        }
    }

    /// Interpret the scalar as `f64` when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::U32(v) => Some(f64::from(*v)),
            Scalar::U64(v) => Some(*v as f64),
            Scalar::F64(v) => Some(*v),
            Scalar::Str(_) => None,
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::U32(v) => write!(f, "{v}"),
            Scalar::U64(v) => write!(f, "{v}"),
            Scalar::F64(v) => write!(f, "{v}"),
            Scalar::Str(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<u32> for Scalar {
    fn from(v: u32) -> Self {
        Scalar::U32(v)
    }
}
impl From<u64> for Scalar {
    fn from(v: u64) -> Self {
        Scalar::U64(v)
    }
}
impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::F64(v)
    }
}
impl From<&str> for Scalar {
    fn from(v: &str) -> Self {
        Scalar::Str(v.to_owned())
    }
}
impl From<String> for Scalar {
    fn from(v: String) -> Self {
        Scalar::Str(v)
    }
}

/// A typed, densely packed vector of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// `u32` values.
    U32(Vec<u32>),
    /// `u64` values.
    U64(Vec<u64>),
    /// `f64` values.
    F64(Vec<f64>),
    /// String values.
    Str(Vec<String>),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::U32 => Column::U32(Vec::new()),
            ColumnType::U64 => Column::U64(Vec::new()),
            ColumnType::F64 => Column::F64(Vec::new()),
            ColumnType::Str => Column::Str(Vec::new()),
        }
    }

    /// Create an empty column with reserved capacity.
    pub fn with_capacity(ty: ColumnType, cap: usize) -> Self {
        match ty {
            ColumnType::U32 => Column::U32(Vec::with_capacity(cap)),
            ColumnType::U64 => Column::U64(Vec::with_capacity(cap)),
            ColumnType::F64 => Column::F64(Vec::with_capacity(cap)),
            ColumnType::Str => Column::Str(Vec::with_capacity(cap)),
        }
    }

    /// The type of this column.
    pub fn ty(&self) -> ColumnType {
        match self {
            Column::U32(_) => ColumnType::U32,
            Column::U64(_) => ColumnType::U64,
            Column::F64(_) => ColumnType::F64,
            Column::Str(_) => ColumnType::Str,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::U32(v) => v.len(),
            Column::U64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the value at `pos`.
    pub fn get(&self, pos: usize) -> Result<Scalar> {
        if pos >= self.len() {
            return Err(StorageError::OutOfBounds {
                pos,
                len: self.len(),
            });
        }
        Ok(match self {
            Column::U32(v) => Scalar::U32(v[pos]),
            Column::U64(v) => Scalar::U64(v[pos]),
            Column::F64(v) => Scalar::F64(v[pos]),
            Column::Str(v) => Scalar::Str(v[pos].clone()),
        })
    }

    /// Append a scalar; the scalar type must match the column type.
    pub fn push(&mut self, value: Scalar) -> Result<()> {
        match (self, value) {
            (Column::U32(v), Scalar::U32(x)) => v.push(x),
            (Column::U64(v), Scalar::U64(x)) => v.push(x),
            (Column::F64(v), Scalar::F64(x)) => v.push(x),
            (Column::Str(v), Scalar::Str(x)) => v.push(x),
            (col, _) => {
                return Err(StorageError::ScalarType { expected: col.ty() });
            }
        }
        Ok(())
    }

    /// Borrow as `&[u32]`, failing on other types.
    pub fn as_u32(&self) -> Result<&[u32]> {
        match self {
            Column::U32(v) => Ok(v),
            other => Err(StorageError::TypeMismatch {
                expected: ColumnType::U32,
                found: other.ty(),
            }),
        }
    }

    /// Borrow as `&[u64]`, failing on other types.
    pub fn as_u64(&self) -> Result<&[u64]> {
        match self {
            Column::U64(v) => Ok(v),
            other => Err(StorageError::TypeMismatch {
                expected: ColumnType::U64,
                found: other.ty(),
            }),
        }
    }

    /// Borrow as `&[f64]`, failing on other types.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            Column::F64(v) => Ok(v),
            other => Err(StorageError::TypeMismatch {
                expected: ColumnType::F64,
                found: other.ty(),
            }),
        }
    }

    /// Borrow as `&[String]`, failing on other types.
    pub fn as_str(&self) -> Result<&[String]> {
        match self {
            Column::Str(v) => Ok(v),
            other => Err(StorageError::TypeMismatch {
                expected: ColumnType::Str,
                found: other.ty(),
            }),
        }
    }

    /// Gather `positions` into a new column (positional projection).
    pub fn gather(&self, positions: &[usize]) -> Result<Column> {
        for &p in positions {
            if p >= self.len() {
                return Err(StorageError::OutOfBounds {
                    pos: p,
                    len: self.len(),
                });
            }
        }
        Ok(match self {
            Column::U32(v) => Column::U32(positions.iter().map(|&p| v[p]).collect()),
            Column::U64(v) => Column::U64(positions.iter().map(|&p| v[p]).collect()),
            Column::F64(v) => Column::F64(positions.iter().map(|&p| v[p]).collect()),
            Column::Str(v) => Column::Str(positions.iter().map(|&p| v[p].clone()).collect()),
        })
    }

    /// Take a contiguous slice `[start, end)` as a new column.
    pub fn slice(&self, start: usize, end: usize) -> Result<Column> {
        if start > end || end > self.len() {
            return Err(StorageError::OutOfBounds {
                pos: end,
                len: self.len(),
            });
        }
        Ok(match self {
            Column::U32(v) => Column::U32(v[start..end].to_vec()),
            Column::U64(v) => Column::U64(v[start..end].to_vec()),
            Column::F64(v) => Column::F64(v[start..end].to_vec()),
            Column::Str(v) => Column::Str(v[start..end].to_vec()),
        })
    }

    /// Whether values are non-decreasing under the total order.
    pub fn is_sorted_asc(&self) -> bool {
        match self {
            Column::U32(v) => v.windows(2).all(|w| w[0] <= w[1]),
            Column::U64(v) => v.windows(2).all(|w| w[0] <= w[1]),
            Column::F64(v) => v
                .windows(2)
                .all(|w| w[0].total_cmp(&w[1]) != std::cmp::Ordering::Greater),
            Column::Str(v) => v.windows(2).all(|w| w[0] <= w[1]),
        }
    }

    /// Heap size in bytes of the packed payload (used by the cost model and
    /// by the fragmentation volume accounting).
    pub fn byte_size(&self) -> usize {
        match self {
            Column::U32(v) => v.len() * std::mem::size_of::<u32>(),
            Column::U64(v) => v.len() * std::mem::size_of::<u64>(),
            Column::F64(v) => v.len() * std::mem::size_of::<f64>(),
            Column::Str(v) => v
                .iter()
                .map(|s| s.len() + std::mem::size_of::<String>())
                .sum(),
        }
    }
}

impl From<Vec<u32>> for Column {
    fn from(v: Vec<u32>) -> Self {
        Column::U32(v)
    }
}
impl From<Vec<u64>> for Column {
    fn from(v: Vec<u64>) -> Self {
        Column::U64(v)
    }
}
impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::F64(v)
    }
}
impl From<Vec<String>> for Column {
    fn from(v: Vec<String>) -> Self {
        Column::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::empty(ColumnType::U32);
        c.push(Scalar::U32(7)).unwrap();
        c.push(Scalar::U32(9)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap(), Scalar::U32(9));
    }

    #[test]
    fn push_wrong_type_fails() {
        let mut c = Column::empty(ColumnType::U32);
        let err = c.push(Scalar::F64(1.0)).unwrap_err();
        assert_eq!(
            err,
            StorageError::ScalarType {
                expected: ColumnType::U32
            }
        );
    }

    #[test]
    fn get_out_of_bounds() {
        let c = Column::from(vec![1u32]);
        assert!(matches!(
            c.get(3),
            Err(StorageError::OutOfBounds { pos: 3, len: 1 })
        ));
    }

    #[test]
    fn gather_projects_positions() {
        let c = Column::from(vec![10u32, 20, 30, 40]);
        let g = c.gather(&[3, 0, 0]).unwrap();
        assert_eq!(g, Column::from(vec![40u32, 10, 10]));
    }

    #[test]
    fn gather_out_of_bounds() {
        let c = Column::from(vec![1.0f64]);
        assert!(c.gather(&[1]).is_err());
    }

    #[test]
    fn slice_bounds() {
        let c = Column::from(vec![1u32, 2, 3, 4]);
        assert_eq!(c.slice(1, 3).unwrap(), Column::from(vec![2u32, 3]));
        assert!(c.slice(3, 2).is_err());
        assert!(c.slice(0, 5).is_err());
    }

    #[test]
    fn sortedness_checks() {
        assert!(Column::from(vec![1u32, 1, 2]).is_sorted_asc());
        assert!(!Column::from(vec![2u32, 1]).is_sorted_asc());
        assert!(Column::from(vec![1.0f64, f64::NAN]).is_sorted_asc());
        assert!(Column::from(Vec::<u32>::new()).is_sorted_asc());
    }

    #[test]
    fn scalar_total_cmp_numeric_and_mismatch() {
        use std::cmp::Ordering;
        assert_eq!(
            Scalar::F64(1.0).total_cmp(&Scalar::F64(2.0)).unwrap(),
            Ordering::Less
        );
        assert!(Scalar::U32(1).total_cmp(&Scalar::F64(1.0)).is_err());
    }

    #[test]
    fn scalar_as_f64() {
        assert_eq!(Scalar::U32(3).as_f64(), Some(3.0));
        assert_eq!(Scalar::U64(4).as_f64(), Some(4.0));
        assert_eq!(Scalar::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn byte_size_counts_payload() {
        assert_eq!(Column::from(vec![0u32; 8]).byte_size(), 32);
        assert_eq!(Column::from(vec![0.0f64; 8]).byte_size(), 64);
    }

    #[test]
    fn typed_accessors() {
        let c = Column::from(vec![1.5f64, 2.5]);
        assert_eq!(c.as_f64().unwrap(), &[1.5, 2.5]);
        assert!(c.as_u32().is_err());
        assert!(c.as_u64().is_err());
        assert!(c.as_str().is_err());
    }
}
