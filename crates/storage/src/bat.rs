//! Binary Association Tables.
//!
//! A [`Bat`] is the MonetDB-style storage primitive: a sequence of BUNs
//! (binary units), each a pair of a head object id (`u32`) and a typed tail
//! value. Moa flattens its structured algebra onto collections of BATs, so
//! every physical operator in this workspace ultimately manipulates these.
//!
//! The head is either *void* (a dense, ascending oid sequence starting at a
//! base — stored implicitly, occupying no memory) or *materialized* (an
//! explicit oid vector). Properties such as tail sortedness are computed at
//! construction and kept on the BAT so operators can pick cheaper
//! implementations (e.g. binary-search selection on sorted tails); this is
//! exactly the ordering knowledge the paper's inter-object optimizer exploits.

use crate::column::{Column, ColumnType, Scalar};
use crate::error::{Result, StorageError};

/// The head (left) column of a BAT.
#[derive(Debug, Clone, PartialEq)]
pub enum Head {
    /// Dense ascending oids `base, base+1, …` stored implicitly.
    Void {
        /// First oid of the sequence.
        base: u32,
    },
    /// Explicitly materialized oids.
    Oids(Vec<u32>),
}

/// Cheap-to-check physical properties used by the optimizer and kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Props {
    /// Tail values are non-decreasing.
    pub tail_sorted_asc: bool,
    /// Tail values are non-increasing.
    pub tail_sorted_desc: bool,
    /// Head is a dense void sequence.
    pub head_dense: bool,
}

/// A Binary Association Table: aligned (head oid, tail value) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Bat {
    head: Head,
    tail: Column,
    props: Props,
}

impl Bat {
    /// Build a BAT with a dense void head starting at oid 0.
    pub fn dense(tail: Column) -> Bat {
        Bat::dense_from(0, tail)
    }

    /// Build a BAT with a dense void head starting at `base`.
    pub fn dense_from(base: u32, tail: Column) -> Bat {
        let mut props = Props {
            head_dense: true,
            ..Props::default()
        };
        compute_sortedness(&tail, &mut props);
        Bat {
            head: Head::Void { base },
            tail,
            props,
        }
    }

    /// Build a BAT with materialized head oids; lengths must match.
    pub fn new(head: Vec<u32>, tail: Column) -> Result<Bat> {
        if head.len() != tail.len() {
            return Err(StorageError::LengthMismatch {
                left: head.len(),
                right: tail.len(),
            });
        }
        let mut props = Props::default();
        compute_sortedness(&tail, &mut props);
        Ok(Bat {
            head: Head::Oids(head),
            tail,
            props,
        })
    }

    /// Number of BUNs.
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// Whether the BAT holds no BUNs.
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// The tail column.
    pub fn tail(&self) -> &Column {
        &self.tail
    }

    /// The tail column type.
    pub fn tail_type(&self) -> ColumnType {
        self.tail.ty()
    }

    /// The head.
    pub fn head(&self) -> &Head {
        &self.head
    }

    /// Physical properties.
    pub fn props(&self) -> Props {
        self.props
    }

    /// The head oid at `pos`.
    pub fn head_oid(&self, pos: usize) -> Result<u32> {
        if pos >= self.len() {
            return Err(StorageError::OutOfBounds {
                pos,
                len: self.len(),
            });
        }
        Ok(match &self.head {
            Head::Void { base } => base + pos as u32,
            Head::Oids(v) => v[pos],
        })
    }

    /// The tail value at `pos`.
    pub fn tail_value(&self, pos: usize) -> Result<Scalar> {
        self.tail.get(pos)
    }

    /// Materialize the head oids into a vector.
    pub fn head_oids(&self) -> Vec<u32> {
        match &self.head {
            Head::Void { base } => (0..self.len() as u32).map(|i| base + i).collect(),
            Head::Oids(v) => v.clone(),
        }
    }

    /// Iterate BUNs as `(oid, scalar)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Scalar)> + '_ {
        (0..self.len()).map(move |i| {
            let oid = match &self.head {
                Head::Void { base } => base + i as u32,
                Head::Oids(v) => v[i],
            };
            // Positions are in range by construction.
            (oid, self.tail.get(i).expect("in-range position"))
        })
    }

    /// Positional projection: build a new BAT from the BUNs at `positions`.
    pub fn gather(&self, positions: &[usize]) -> Result<Bat> {
        let tail = self.tail.gather(positions)?;
        let head = match &self.head {
            Head::Void { base } => Head::Oids(positions.iter().map(|&p| base + p as u32).collect()),
            Head::Oids(v) => Head::Oids(positions.iter().map(|&p| v[p]).collect()),
        };
        let mut props = Props::default();
        compute_sortedness(&tail, &mut props);
        Ok(Bat { head, tail, props })
    }

    /// Contiguous positional slice `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Result<Bat> {
        let tail = self.tail.slice(start, end)?;
        let head = match &self.head {
            Head::Void { base } => Head::Void {
                base: base + start as u32,
            },
            Head::Oids(v) => Head::Oids(v[start..end].to_vec()),
        };
        let mut props = Props {
            head_dense: matches!(head, Head::Void { .. }),
            ..Props::default()
        };
        compute_sortedness(&tail, &mut props);
        Ok(Bat { head, tail, props })
    }

    /// MonetDB `reverse`: swap head and tail. Requires a `u32` tail (which
    /// becomes the new head). The old head is materialized into the new tail.
    pub fn reverse(&self) -> Result<Bat> {
        let new_head = self.tail.as_u32()?.to_vec();
        let new_tail = Column::U32(self.head_oids());
        Bat::new(new_head, new_tail)
    }

    /// MonetDB `mirror`: a BAT mapping each head oid to itself.
    pub fn mirror(&self) -> Bat {
        let oids = self.head_oids();
        Bat::new(oids.clone(), Column::U32(oids)).expect("equal lengths")
    }

    /// Payload bytes (tail plus materialized head); void heads are free.
    pub fn byte_size(&self) -> usize {
        let head_bytes = match &self.head {
            Head::Void { .. } => 0,
            Head::Oids(v) => v.len() * std::mem::size_of::<u32>(),
        };
        head_bytes + self.tail.byte_size()
    }

    /// Binary-search the position range `[lo_pos, hi_pos)` of tail values in
    /// `[lo, hi]`. Requires an ascending-sorted tail.
    pub fn sorted_range(&self, lo: &Scalar, hi: &Scalar) -> Result<(usize, usize)> {
        if !self.props.tail_sorted_asc {
            return Err(StorageError::NotSorted);
        }
        let n = self.len();
        let cmp_at = |pos: usize, bound: &Scalar| -> std::cmp::Ordering {
            // Types are validated by the first comparison; a mismatch makes
            // partition_point see Ordering::Less uniformly, caught below.
            self.tail
                .get(pos)
                .ok()
                .and_then(|v| v.total_cmp(bound).ok())
                .unwrap_or(std::cmp::Ordering::Less)
        };
        if n > 0 {
            // Validate bound types eagerly for a clean error.
            self.tail.get(0)?.total_cmp(lo)?;
            self.tail.get(0)?.total_cmp(hi)?;
        }
        let start = partition_point(n, |p| cmp_at(p, lo) == std::cmp::Ordering::Less);
        let end = partition_point(n, |p| cmp_at(p, hi) != std::cmp::Ordering::Greater);
        Ok((start, end.max(start)))
    }
}

/// Generic partition point over positions `0..n`.
fn partition_point(n: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn compute_sortedness(tail: &Column, props: &mut Props) {
    props.tail_sorted_asc = tail.is_sorted_asc();
    props.tail_sorted_desc = match tail {
        Column::U32(v) => v.windows(2).all(|w| w[0] >= w[1]),
        Column::U64(v) => v.windows(2).all(|w| w[0] >= w[1]),
        Column::F64(v) => v
            .windows(2)
            .all(|w| w[0].total_cmp(&w[1]) != std::cmp::Ordering::Less),
        Column::Str(v) => v.windows(2).all(|w| w[0] >= w[1]),
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bat_u32(v: Vec<u32>) -> Bat {
        Bat::dense(Column::from(v))
    }

    #[test]
    fn dense_head_oids() {
        let b = bat_u32(vec![5, 6, 7]);
        assert_eq!(b.head_oids(), vec![0, 1, 2]);
        assert_eq!(b.head_oid(2).unwrap(), 2);
        assert!(b.props().head_dense);
    }

    #[test]
    fn dense_from_base() {
        let b = Bat::dense_from(100, Column::from(vec![1u32, 2]));
        assert_eq!(b.head_oids(), vec![100, 101]);
    }

    #[test]
    fn new_length_mismatch() {
        let r = Bat::new(vec![1, 2], Column::from(vec![1u32]));
        assert!(matches!(r, Err(StorageError::LengthMismatch { .. })));
    }

    #[test]
    fn sortedness_props() {
        assert!(bat_u32(vec![1, 2, 3]).props().tail_sorted_asc);
        assert!(bat_u32(vec![3, 2, 1]).props().tail_sorted_desc);
        let both = bat_u32(vec![2, 2]);
        assert!(both.props().tail_sorted_asc && both.props().tail_sorted_desc);
        let neither = bat_u32(vec![1, 3, 2]);
        assert!(!neither.props().tail_sorted_asc && !neither.props().tail_sorted_desc);
    }

    #[test]
    fn iter_yields_pairs() {
        let b = Bat::new(vec![9, 8], Column::from(vec![1.0f64, 2.0])).unwrap();
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(pairs[0], (9, Scalar::F64(1.0)));
        assert_eq!(pairs[1], (8, Scalar::F64(2.0)));
    }

    #[test]
    fn gather_and_slice() {
        let b = bat_u32(vec![10, 20, 30, 40]);
        let g = b.gather(&[2, 0]).unwrap();
        assert_eq!(g.head_oids(), vec![2, 0]);
        assert_eq!(g.tail().as_u32().unwrap(), &[30, 10]);

        let s = b.slice(1, 3).unwrap();
        assert_eq!(s.head_oids(), vec![1, 2]);
        assert_eq!(s.tail().as_u32().unwrap(), &[20, 30]);
        assert!(s.props().head_dense);
    }

    #[test]
    fn reverse_swaps_columns() {
        let b = Bat::new(vec![1, 2], Column::from(vec![10u32, 20])).unwrap();
        let r = b.reverse().unwrap();
        assert_eq!(r.head_oids(), vec![10, 20]);
        assert_eq!(r.tail().as_u32().unwrap(), &[1, 2]);
    }

    #[test]
    fn reverse_requires_u32_tail() {
        let b = Bat::dense(Column::from(vec![1.0f64]));
        assert!(b.reverse().is_err());
    }

    #[test]
    fn mirror_maps_oids_to_themselves() {
        let b = Bat::new(vec![3, 5], Column::from(vec![0.0f64, 1.0])).unwrap();
        let m = b.mirror();
        assert_eq!(m.head_oids(), vec![3, 5]);
        assert_eq!(m.tail().as_u32().unwrap(), &[3, 5]);
    }

    #[test]
    fn sorted_range_binary_search() {
        let b = bat_u32(vec![1, 3, 3, 5, 9]);
        let (s, e) = b.sorted_range(&Scalar::U32(3), &Scalar::U32(5)).unwrap();
        assert_eq!((s, e), (1, 4));
        let (s, e) = b.sorted_range(&Scalar::U32(6), &Scalar::U32(8)).unwrap();
        assert_eq!(s, e); // empty range
        let (s, e) = b.sorted_range(&Scalar::U32(0), &Scalar::U32(100)).unwrap();
        assert_eq!((s, e), (0, 5));
    }

    #[test]
    fn sorted_range_rejects_unsorted() {
        let b = bat_u32(vec![5, 1]);
        assert!(matches!(
            b.sorted_range(&Scalar::U32(0), &Scalar::U32(9)),
            Err(StorageError::NotSorted)
        ));
    }

    #[test]
    fn sorted_range_rejects_bound_type_mismatch() {
        let b = bat_u32(vec![1, 2]);
        assert!(b
            .sorted_range(&Scalar::F64(0.0), &Scalar::F64(1.0))
            .is_err());
    }

    #[test]
    fn byte_size_void_head_is_free() {
        let dense = bat_u32(vec![1, 2, 3, 4]);
        let mat = Bat::new(vec![0, 1, 2, 3], Column::from(vec![1u32, 2, 3, 4])).unwrap();
        assert_eq!(dense.byte_size(), 16);
        assert_eq!(mat.byte_size(), 32);
    }

    #[test]
    fn out_of_bounds_access() {
        let b = bat_u32(vec![1]);
        assert!(b.head_oid(1).is_err());
        assert!(b.tail_value(1).is_err());
    }
}
