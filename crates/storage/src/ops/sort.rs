//! Ordering kernels: full sort, argsort, and bounded first-N.
//!
//! `firstn` is the storage-level *sort-stop* primitive: it maintains a
//! bounded heap of N candidates instead of sorting the whole input, which is
//! the baseline physical realization of a top-N operator that the paper's
//! optimizer places into plans.

use std::cmp::Ordering;

use crate::bat::Bat;
use crate::column::Column;
use crate::error::Result;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smallest first.
    Asc,
    /// Largest first.
    Desc,
}

impl Direction {
    fn apply(self, o: Ordering) -> Ordering {
        match self {
            Direction::Asc => o,
            Direction::Desc => o.reverse(),
        }
    }
}

/// Stable argsort of the tail: positions of the BUNs in sorted order.
pub fn order_positions(bat: &Bat, dir: Direction) -> Result<Vec<usize>> {
    let mut positions: Vec<usize> = (0..bat.len()).collect();
    match bat.tail() {
        Column::U32(v) => positions.sort_by(|&a, &b| dir.apply(v[a].cmp(&v[b]))),
        Column::U64(v) => positions.sort_by(|&a, &b| dir.apply(v[a].cmp(&v[b]))),
        Column::F64(v) => positions.sort_by(|&a, &b| dir.apply(v[a].total_cmp(&v[b]))),
        Column::Str(v) => positions.sort_by(|&a, &b| dir.apply(v[a].cmp(&v[b]))),
    }
    Ok(positions)
}

/// Sort a BAT by its tail (stable).
pub fn sort_by_tail(bat: &Bat, dir: Direction) -> Result<Bat> {
    let positions = order_positions(bat, dir)?;
    bat.gather(&positions)
}

/// Return the first `n` BUNs in tail order without sorting the whole input.
///
/// Uses a bounded binary heap of size `n`; ties broken by position so the
/// result is identical to `sort_by_tail(bat, dir).slice(0, n)`.
pub fn firstn(bat: &Bat, n: usize, dir: Direction) -> Result<Bat> {
    let positions = firstn_positions(bat, n, dir)?;
    bat.gather(&positions)
}

/// Positions of the first `n` BUNs in tail order (stable tie-break).
pub fn firstn_positions(bat: &Bat, n: usize, dir: Direction) -> Result<Vec<usize>> {
    if n == 0 || bat.is_empty() {
        return Ok(Vec::new());
    }
    let n = n.min(bat.len());

    // Comparator: "a ranks before b" in the requested direction, stable.
    let ranks_before = |a: usize, b: usize| -> bool {
        let o = match bat.tail() {
            Column::U32(v) => v[a].cmp(&v[b]),
            Column::U64(v) => v[a].cmp(&v[b]),
            Column::F64(v) => v[a].total_cmp(&v[b]),
            Column::Str(v) => v[a].cmp(&v[b]),
        };
        match dir.apply(o) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a < b,
        }
    };

    // Bounded "worst-of-the-best" selection: `best` holds up to n positions;
    // `worst` is the index in `best` of the element that would be evicted.
    let mut best: Vec<usize> = Vec::with_capacity(n);
    for pos in 0..bat.len() {
        if best.len() < n {
            best.push(pos);
        } else {
            // Find current worst (linear in n; n is small for top-N use).
            let mut worst = 0;
            for i in 1..best.len() {
                if ranks_before(best[worst], best[i]) {
                    worst = i;
                }
            }
            if ranks_before(pos, best[worst]) {
                best[worst] = pos;
            }
        }
    }
    best.sort_by(|&a, &b| {
        if ranks_before(a, b) {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    });
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn scores() -> Bat {
        Bat::new(
            vec![10, 11, 12, 13, 14, 15],
            Column::from(vec![0.3f64, 0.9, 0.1, 0.9, 0.5, 0.7]),
        )
        .unwrap()
    }

    #[test]
    fn sort_asc_and_desc() {
        let b = scores();
        let asc = sort_by_tail(&b, Direction::Asc).unwrap();
        assert_eq!(
            asc.tail().as_f64().unwrap(),
            &[0.1, 0.3, 0.5, 0.7, 0.9, 0.9]
        );
        let desc = sort_by_tail(&b, Direction::Desc).unwrap();
        assert_eq!(
            desc.tail().as_f64().unwrap(),
            &[0.9, 0.9, 0.7, 0.5, 0.3, 0.1]
        );
        // Stability: the two 0.9s keep original relative order.
        assert_eq!(desc.head_oids()[..2], [11, 13]);
    }

    #[test]
    fn firstn_equals_sort_prefix() {
        let b = scores();
        for n in 0..=7 {
            for dir in [Direction::Asc, Direction::Desc] {
                let full = sort_by_tail(&b, dir).unwrap();
                let take = n.min(b.len());
                let expect = full.slice(0, take).unwrap();
                let got = firstn(&b, n, dir).unwrap();
                assert_eq!(got.head_oids(), expect.head_oids(), "n={n} dir={dir:?}");
                assert_eq!(got.tail(), expect.tail());
            }
        }
    }

    #[test]
    fn firstn_zero_and_empty() {
        let b = scores();
        assert!(firstn(&b, 0, Direction::Asc).unwrap().is_empty());
        let empty = Bat::dense(Column::from(Vec::<f64>::new()));
        assert!(firstn(&empty, 5, Direction::Desc).unwrap().is_empty());
    }

    #[test]
    fn firstn_larger_than_input_returns_all_sorted() {
        let b = scores();
        let out = firstn(&b, 100, Direction::Desc).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(out.tail().as_f64().unwrap()[0], 0.9);
    }

    #[test]
    fn order_positions_stable_on_strings() {
        let b = Bat::dense(Column::from(vec![
            "b".to_string(),
            "a".to_string(),
            "b".to_string(),
        ]));
        let pos = order_positions(&b, Direction::Asc).unwrap();
        assert_eq!(pos, vec![1, 0, 2]);
    }

    #[test]
    fn nan_sorts_last_ascending() {
        let b = Bat::dense(Column::from(vec![f64::NAN, 1.0, 0.5]));
        let asc = sort_by_tail(&b, Direction::Asc).unwrap();
        assert_eq!(asc.head_oids(), vec![2, 1, 0]);
    }

    #[test]
    fn sorted_output_has_sorted_prop() {
        let b = scores();
        let asc = sort_by_tail(&b, Direction::Asc).unwrap();
        assert!(asc.props().tail_sorted_asc);
    }
}
