//! Grouped aggregation kernels.
//!
//! Set-at-a-time IR evaluation reduces to grouped aggregation: each query
//! term contributes `(doc, partial score)` BUNs, and the engine sums the
//! partials per document. Two implementations are provided: a dense
//! accumulator array (when the oid domain is known and compact — the common
//! case for document ids) and a hash-based fallback.

use std::collections::HashMap;

use crate::bat::Bat;
use crate::column::Column;
use crate::error::{Result, StorageError};

/// Aggregation functions supported by [`group_aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Sum of values per group.
    Sum,
    /// Count of BUNs per group (values ignored).
    Count,
    /// Maximum value per group.
    Max,
    /// Minimum value per group.
    Min,
}

/// Sum `f64` tail values per head oid into a dense accumulator of size
/// `domain`. Head oids must be `< domain`.
///
/// Returns the accumulator; absent oids hold `0.0`.
pub fn sum_by_head_dense(bat: &Bat, domain: usize) -> Result<Vec<f64>> {
    let values = bat.tail().as_f64()?;
    let mut acc = vec![0.0f64; domain];
    for (pos, &v) in values.iter().enumerate() {
        let oid = bat.head_oid(pos)? as usize;
        if oid >= domain {
            return Err(StorageError::OutOfBounds {
                pos: oid,
                len: domain,
            });
        }
        acc[oid] += v;
    }
    Ok(acc)
}

/// Accumulate `f64` tail values per head oid into an existing dense
/// accumulator (the "workhorse" pattern used by batched query evaluation).
pub fn sum_by_head_into(bat: &Bat, acc: &mut [f64]) -> Result<()> {
    let values = bat.tail().as_f64()?;
    for (pos, &v) in values.iter().enumerate() {
        let oid = bat.head_oid(pos)? as usize;
        if oid >= acc.len() {
            return Err(StorageError::OutOfBounds {
                pos: oid,
                len: acc.len(),
            });
        }
        acc[oid] += v;
    }
    Ok(())
}

/// Hash-based grouped aggregation over `f64` tails keyed by head oid.
/// Output BUNs are ordered by ascending group oid for determinism.
pub fn group_aggregate(bat: &Bat, agg: AggFn) -> Result<Bat> {
    let values = bat.tail().as_f64()?;
    let mut groups: HashMap<u32, (f64, u64)> = HashMap::new();
    for (pos, &v) in values.iter().enumerate() {
        let oid = bat.head_oid(pos)?;
        let entry = groups.entry(oid).or_insert_with(|| match agg {
            AggFn::Sum | AggFn::Count => (0.0, 0),
            AggFn::Max => (f64::NEG_INFINITY, 0),
            AggFn::Min => (f64::INFINITY, 0),
        });
        entry.1 += 1;
        match agg {
            AggFn::Sum => entry.0 += v,
            AggFn::Count => {}
            AggFn::Max => entry.0 = entry.0.max(v),
            AggFn::Min => entry.0 = entry.0.min(v),
        }
    }
    let mut oids: Vec<u32> = groups.keys().copied().collect();
    oids.sort_unstable();
    let out: Vec<f64> = oids
        .iter()
        .map(|oid| {
            let (acc, cnt) = groups[oid];
            match agg {
                AggFn::Count => cnt as f64,
                _ => acc,
            }
        })
        .collect();
    Bat::new(oids, Column::from(out))
}

/// Count of BUNs per head oid (ascending oid order).
pub fn count_by_head(bat: &Bat) -> Result<Bat> {
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for pos in 0..bat.len() {
        *counts.entry(bat.head_oid(pos)?).or_insert(0) += 1;
    }
    let mut oids: Vec<u32> = counts.keys().copied().collect();
    oids.sort_unstable();
    let tallies: Vec<u64> = oids.iter().map(|o| counts[o]).collect();
    Bat::new(oids, Column::from(tallies))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contributions() -> Bat {
        // doc -> partial score; doc 1 appears twice.
        Bat::new(vec![1, 0, 1, 3], Column::from(vec![0.5f64, 0.2, 0.25, 1.0])).unwrap()
    }

    #[test]
    fn dense_sum_accumulates() {
        let acc = sum_by_head_dense(&contributions(), 4).unwrap();
        assert_eq!(acc, vec![0.2, 0.75, 0.0, 1.0]);
    }

    #[test]
    fn dense_sum_rejects_small_domain() {
        assert!(matches!(
            sum_by_head_dense(&contributions(), 2),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn sum_into_reuses_accumulator() {
        let mut acc = vec![1.0f64; 4];
        sum_by_head_into(&contributions(), &mut acc).unwrap();
        assert_eq!(acc, vec![1.2, 1.75, 1.0, 2.0]);
    }

    #[test]
    fn group_sum_sorted_by_oid() {
        let out = group_aggregate(&contributions(), AggFn::Sum).unwrap();
        assert_eq!(out.head_oids(), vec![0, 1, 3]);
        assert_eq!(out.tail().as_f64().unwrap(), &[0.2, 0.75, 1.0]);
    }

    #[test]
    fn group_count_counts_buns() {
        let out = group_aggregate(&contributions(), AggFn::Count).unwrap();
        assert_eq!(out.head_oids(), vec![0, 1, 3]);
        assert_eq!(out.tail().as_f64().unwrap(), &[1.0, 2.0, 1.0]);
    }

    #[test]
    fn group_max_and_min() {
        let b = contributions();
        let mx = group_aggregate(&b, AggFn::Max).unwrap();
        assert_eq!(mx.tail().as_f64().unwrap(), &[0.2, 0.5, 1.0]);
        let mn = group_aggregate(&b, AggFn::Min).unwrap();
        assert_eq!(mn.tail().as_f64().unwrap(), &[0.2, 0.25, 1.0]);
    }

    #[test]
    fn count_by_head_u64() {
        let out = count_by_head(&contributions()).unwrap();
        assert_eq!(out.head_oids(), vec![0, 1, 3]);
        assert_eq!(out.tail().as_u64().unwrap(), &[1, 2, 1]);
    }

    #[test]
    fn empty_input_yields_empty_groups() {
        let b = Bat::dense(Column::from(Vec::<f64>::new()));
        assert!(group_aggregate(&b, AggFn::Sum).unwrap().is_empty());
        assert!(count_by_head(&b).unwrap().is_empty());
        assert_eq!(sum_by_head_dense(&b, 3).unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn group_rejects_non_f64() {
        let b = Bat::dense(Column::from(vec![1u32]));
        assert!(group_aggregate(&b, AggFn::Sum).is_err());
    }
}
