//! Selection kernels.
//!
//! `select_range` implements the MIL-style range select over a BAT tail. On
//! tails known to be sorted it switches to binary search — the physical
//! advantage that the paper's Example 1 rewrite unlocks once ordering
//! knowledge crosses extension boundaries. The `*_profiled` variants report
//! how many BUNs were actually inspected, which the experiment harness uses
//! to show scan-volume differences independent of wall-clock noise.

use crate::bat::Bat;
use crate::column::Scalar;
use crate::error::Result;

/// Execution profile of a selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SelectProfile {
    /// BUNs inspected (comparisons performed against the bounds).
    pub scanned: usize,
    /// BUNs emitted into the result.
    pub emitted: usize,
    /// Whether the sorted-tail binary-search path was taken.
    pub used_binary_search: bool,
}

/// Select all BUNs whose tail value lies in `[lo, hi]` (inclusive).
///
/// Uses binary search when the tail is ascending-sorted, otherwise a scan.
pub fn select_range(bat: &Bat, lo: &Scalar, hi: &Scalar) -> Result<Bat> {
    select_range_profiled(bat, lo, hi).map(|(b, _)| b)
}

/// [`select_range`] plus an execution profile.
pub fn select_range_profiled(bat: &Bat, lo: &Scalar, hi: &Scalar) -> Result<(Bat, SelectProfile)> {
    if bat.props().tail_sorted_asc {
        let (start, end) = bat.sorted_range(lo, hi)?;
        let out = bat.slice(start, end)?;
        let profile = SelectProfile {
            scanned: usize::BITS as usize - (bat.len().max(1)).leading_zeros() as usize,
            emitted: out.len(),
            used_binary_search: true,
        };
        return Ok((out, profile));
    }
    scan_select(bat, lo, hi)
}

/// Force the scan path regardless of sortedness (baseline for experiments).
pub fn scan_select(bat: &Bat, lo: &Scalar, hi: &Scalar) -> Result<(Bat, SelectProfile)> {
    if !bat.is_empty() {
        // Validate bound types once so per-element errors cannot occur.
        bat.tail_value(0)?.total_cmp(lo)?;
        bat.tail_value(0)?.total_cmp(hi)?;
    }
    let mut positions = Vec::new();
    for pos in 0..bat.len() {
        let v = bat.tail_value(pos)?;
        let ge_lo = v.total_cmp(lo)? != std::cmp::Ordering::Less;
        let le_hi = v.total_cmp(hi)? != std::cmp::Ordering::Greater;
        if ge_lo && le_hi {
            positions.push(pos);
        }
    }
    let out = bat.gather(&positions)?;
    let profile = SelectProfile {
        scanned: bat.len(),
        emitted: out.len(),
        used_binary_search: false,
    };
    Ok((out, profile))
}

/// Select BUNs whose tail equals `value`.
pub fn select_eq(bat: &Bat, value: &Scalar) -> Result<Bat> {
    select_range(bat, value, value)
}

/// Range select returning only the head oids (`uselect` in MIL).
pub fn uselect_range(bat: &Bat, lo: &Scalar, hi: &Scalar) -> Result<Vec<u32>> {
    let selected = select_range(bat, lo, hi)?;
    Ok(selected.head_oids())
}

/// Select the BUNs at the given tail threshold or above: `tail >= lo`.
pub fn select_ge_f64(bat: &Bat, lo: f64) -> Result<Bat> {
    select_range(bat, &Scalar::F64(lo), &Scalar::F64(f64::INFINITY))
}

/// Positional filter: keep BUNs whose position satisfies the predicate over
/// the tail as `f64`. Non-numeric tails yield a type error on first access.
pub fn filter_f64(bat: &Bat, pred: impl Fn(f64) -> bool) -> Result<Bat> {
    let values = bat.tail().as_f64()?;
    let positions: Vec<usize> = values
        .iter()
        .enumerate()
        .filter_map(|(i, &v)| if pred(v) { Some(i) } else { None })
        .collect();
    bat.gather(&positions)
}

/// Build a BAT holding only the BUNs whose head oid appears in `oids`.
/// `oids` need not be sorted; lookup is via a hash set.
pub fn select_heads(bat: &Bat, oids: &[u32]) -> Result<Bat> {
    let set: std::collections::HashSet<u32> = oids.iter().copied().collect();
    let mut positions = Vec::new();
    for pos in 0..bat.len() {
        if set.contains(&bat.head_oid(pos)?) {
            positions.push(pos);
        }
    }
    bat.gather(&positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn unsorted_bat() -> Bat {
        Bat::dense(Column::from(vec![5u32, 1, 9, 3, 7, 3]))
    }

    fn sorted_bat() -> Bat {
        Bat::dense(Column::from(vec![1u32, 3, 3, 5, 7, 9]))
    }

    #[test]
    fn scan_select_range_inclusive() {
        let b = unsorted_bat();
        let (out, prof) = scan_select(&b, &Scalar::U32(3), &Scalar::U32(7)).unwrap();
        assert_eq!(out.tail().as_u32().unwrap(), &[5, 3, 7, 3]);
        assert_eq!(out.head_oids(), vec![0, 3, 4, 5]);
        assert_eq!(prof.scanned, 6);
        assert_eq!(prof.emitted, 4);
        assert!(!prof.used_binary_search);
    }

    #[test]
    fn sorted_select_uses_binary_search() {
        let b = sorted_bat();
        let (out, prof) = select_range_profiled(&b, &Scalar::U32(3), &Scalar::U32(7)).unwrap();
        assert_eq!(out.tail().as_u32().unwrap(), &[3, 3, 5, 7]);
        assert!(prof.used_binary_search);
        assert!(prof.scanned < b.len());
    }

    #[test]
    fn select_results_agree_between_paths() {
        let b = sorted_bat();
        let fast = select_range(&b, &Scalar::U32(2), &Scalar::U32(8)).unwrap();
        let (slow, _) = scan_select(&b, &Scalar::U32(2), &Scalar::U32(8)).unwrap();
        assert_eq!(fast.tail(), slow.tail());
        assert_eq!(fast.head_oids(), slow.head_oids());
    }

    #[test]
    fn select_eq_matches_duplicates() {
        let b = unsorted_bat();
        let out = select_eq(&b, &Scalar::U32(3)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.head_oids(), vec![3, 5]);
    }

    #[test]
    fn uselect_returns_oids_only() {
        let b = unsorted_bat();
        let oids = uselect_range(&b, &Scalar::U32(5), &Scalar::U32(9)).unwrap();
        assert_eq!(oids, vec![0, 2, 4]);
    }

    #[test]
    fn empty_range_is_empty() {
        let b = sorted_bat();
        let out = select_range(&b, &Scalar::U32(100), &Scalar::U32(200)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn empty_input_is_fine() {
        let b = Bat::dense(Column::from(Vec::<u32>::new()));
        let out = select_range(&b, &Scalar::U32(0), &Scalar::U32(1)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn type_mismatch_is_error_on_both_paths() {
        assert!(select_range(&sorted_bat(), &Scalar::F64(0.0), &Scalar::F64(1.0)).is_err());
        assert!(scan_select(&unsorted_bat(), &Scalar::F64(0.0), &Scalar::F64(1.0)).is_err());
    }

    #[test]
    fn select_ge_f64_threshold() {
        let b = Bat::dense(Column::from(vec![0.1f64, 0.9, 0.5, 0.7]));
        let out = select_ge_f64(&b, 0.5).unwrap();
        assert_eq!(out.head_oids(), vec![1, 2, 3]);
    }

    #[test]
    fn filter_f64_predicate() {
        let b = Bat::dense(Column::from(vec![0.1f64, 0.9, 0.5]));
        let out = filter_f64(&b, |v| v > 0.4).unwrap();
        assert_eq!(out.head_oids(), vec![1, 2]);
        assert!(filter_f64(&Bat::dense(Column::from(vec![1u32])), |_| true).is_err());
    }

    #[test]
    fn select_heads_by_oid_set() {
        let b = Bat::new(vec![10, 20, 30], Column::from(vec![1.0f64, 2.0, 3.0])).unwrap();
        let out = select_heads(&b, &[30, 10, 99]).unwrap();
        assert_eq!(out.head_oids(), vec![10, 30]);
    }
}
