//! Kernel operations over BATs (the MIL-style operator set).

pub mod arith;
pub mod group;
pub mod join;
pub mod select;
pub mod sort;

pub use arith::{map_f64, map_u32_to_f64, max_f64, scale, sum_f64, zip_f64};
pub use group::{count_by_head, group_aggregate, sum_by_head_dense, sum_by_head_into, AggFn};
pub use join::{antijoin, fetch_join, hash_join, semijoin};
pub use select::{
    filter_f64, scan_select, select_eq, select_ge_f64, select_heads, select_range,
    select_range_profiled, uselect_range, SelectProfile,
};
pub use sort::{firstn, firstn_positions, order_positions, sort_by_tail, Direction};
