//! Multiplexed arithmetic kernels (`[+]`, `[*]`, … in MIL terms).
//!
//! Score computation in the flattened IR plans is element-wise arithmetic
//! over aligned BATs: tf × idf, log-smoothing, weighting. These kernels apply
//! a function positionally and preserve the head.

use crate::bat::Bat;
use crate::column::Column;
use crate::error::{Result, StorageError};

/// Apply `f` to each `f64` tail value, preserving heads.
pub fn map_f64(bat: &Bat, f: impl Fn(f64) -> f64) -> Result<Bat> {
    let values = bat.tail().as_f64()?;
    let out: Vec<f64> = values.iter().map(|&v| f(v)).collect();
    Bat::new(bat.head_oids(), Column::from(out))
}

/// Apply `f` to each `u32` tail value producing an `f64` tail (e.g. casting
/// term frequencies into the score domain).
pub fn map_u32_to_f64(bat: &Bat, f: impl Fn(u32) -> f64) -> Result<Bat> {
    let values = bat.tail().as_u32()?;
    let out: Vec<f64> = values.iter().map(|&v| f(v)).collect();
    Bat::new(bat.head_oids(), Column::from(out))
}

/// Positionally combine two aligned `f64` BATs with `f`, keeping the left
/// head. Lengths must match; head alignment is the caller's contract (as in
/// MIL's multiplexed binary operators).
pub fn zip_f64(left: &Bat, right: &Bat, f: impl Fn(f64, f64) -> f64) -> Result<Bat> {
    if left.len() != right.len() {
        return Err(StorageError::LengthMismatch {
            left: left.len(),
            right: right.len(),
        });
    }
    let a = left.tail().as_f64()?;
    let b = right.tail().as_f64()?;
    let out: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect();
    Bat::new(left.head_oids(), Column::from(out))
}

/// Multiply every tail value by a constant.
pub fn scale(bat: &Bat, factor: f64) -> Result<Bat> {
    map_f64(bat, |v| v * factor)
}

/// Sum of an `f64` tail.
pub fn sum_f64(bat: &Bat) -> Result<f64> {
    Ok(bat.tail().as_f64()?.iter().sum())
}

/// Maximum of an `f64` tail; `None` when empty.
pub fn max_f64(bat: &Bat) -> Result<Option<f64>> {
    Ok(bat
        .tail()
        .as_f64()?
        .iter()
        .copied()
        .fold(None, |m: Option<f64>, v| {
            Some(m.map_or(v, |m| if v.total_cmp(&m).is_gt() { v } else { m }))
        }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_heads() {
        let b = Bat::new(vec![4, 7], Column::from(vec![1.0f64, 2.0])).unwrap();
        let out = map_f64(&b, |v| v + 0.5).unwrap();
        assert_eq!(out.head_oids(), vec![4, 7]);
        assert_eq!(out.tail().as_f64().unwrap(), &[1.5, 2.5]);
    }

    #[test]
    fn map_u32_casts() {
        let b = Bat::dense(Column::from(vec![2u32, 3]));
        let out = map_u32_to_f64(&b, |tf| (1.0 + f64::from(tf)).ln()).unwrap();
        assert!((out.tail().as_f64().unwrap()[0] - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn zip_multiplies_scores() {
        let a = Bat::dense(Column::from(vec![2.0f64, 3.0]));
        let b = Bat::dense(Column::from(vec![10.0f64, 100.0]));
        let out = zip_f64(&a, &b, |x, y| x * y).unwrap();
        assert_eq!(out.tail().as_f64().unwrap(), &[20.0, 300.0]);
    }

    #[test]
    fn zip_length_mismatch() {
        let a = Bat::dense(Column::from(vec![1.0f64]));
        let b = Bat::dense(Column::from(vec![1.0f64, 2.0]));
        assert!(matches!(
            zip_f64(&a, &b, |x, _| x),
            Err(StorageError::LengthMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn scale_and_sum() {
        let b = Bat::dense(Column::from(vec![1.0f64, 2.0, 3.0]));
        let s = scale(&b, 2.0).unwrap();
        assert_eq!(sum_f64(&s).unwrap(), 12.0);
    }

    #[test]
    fn max_handles_empty_and_nan() {
        let empty = Bat::dense(Column::from(Vec::<f64>::new()));
        assert_eq!(max_f64(&empty).unwrap(), None);
        let with_nan = Bat::dense(Column::from(vec![1.0f64, f64::NAN, 0.5]));
        // total_cmp puts NaN above all numbers; document that behaviour.
        assert!(max_f64(&with_nan).unwrap().unwrap().is_nan());
        let plain = Bat::dense(Column::from(vec![1.0f64, 7.0, 0.5]));
        assert_eq!(max_f64(&plain).unwrap(), Some(7.0));
    }

    #[test]
    fn type_errors_propagate() {
        let b = Bat::dense(Column::from(vec!["x".to_string()]));
        assert!(map_f64(&b, |v| v).is_err());
        assert!(sum_f64(&b).is_err());
    }
}
