//! Join kernels.
//!
//! Three MIL-style joins are provided:
//!
//! * [`fetch_join`] — positional lookup against a void-headed BAT (O(1) per
//!   probe); this is the join Moa's flattened plans use to dereference dense
//!   object ids, e.g. resolving document ids to scores.
//! * [`hash_join`] — general equi-join between a `u32` tail and a head.
//! * [`semijoin`] — restrict a BAT to the BUNs whose head appears in a set
//!   of oids (used to intersect candidate documents between query terms).

use std::collections::HashMap;

use crate::bat::{Bat, Head};
use crate::error::{Result, StorageError};

/// Positional join: for every BUN `(h, t)` in `left` (with `u32` tail `t`),
/// look up position `t - base` in the void-headed `right` and emit
/// `(h, right.tail[t - base])`. Probes that fall outside `right` are errors —
/// dense fetch joins in flattened Moa plans are total by construction.
pub fn fetch_join(left: &Bat, right: &Bat) -> Result<Bat> {
    let base = match right.head() {
        Head::Void { base } => *base,
        Head::Oids(_) => {
            return Err(StorageError::InvalidArgument(
                "fetch_join requires a void-headed right BAT".into(),
            ))
        }
    };
    let probes = left.tail().as_u32()?;
    let mut positions = Vec::with_capacity(probes.len());
    for &t in probes {
        let pos = t
            .checked_sub(base)
            .map(|p| p as usize)
            .filter(|&p| p < right.len())
            .ok_or(StorageError::OutOfBounds {
                pos: t as usize,
                len: right.len(),
            })?;
        positions.push(pos);
    }
    let tail = right.tail().gather(&positions)?;
    Bat::new(left.head_oids(), tail)
}

/// Hash equi-join: match `left` tail values (`u32`) against `right` head
/// oids; emit `(left.head, right.tail)` for every match (inner join,
/// many-to-many).
pub fn hash_join(left: &Bat, right: &Bat) -> Result<Bat> {
    let probes = left.tail().as_u32()?;
    // Build side: right head oid -> positions.
    let mut build: HashMap<u32, Vec<usize>> = HashMap::with_capacity(right.len());
    for pos in 0..right.len() {
        build.entry(right.head_oid(pos)?).or_default().push(pos);
    }
    let mut out_heads = Vec::new();
    let mut out_positions = Vec::new();
    for (lpos, &probe) in probes.iter().enumerate() {
        if let Some(matches) = build.get(&probe) {
            for &rpos in matches {
                out_heads.push(left.head_oid(lpos)?);
                out_positions.push(rpos);
            }
        }
    }
    let tail = right.tail().gather(&out_positions)?;
    Bat::new(out_heads, tail)
}

/// Semijoin: keep the BUNs of `left` whose head oid occurs among `right`'s
/// head oids.
pub fn semijoin(left: &Bat, right: &Bat) -> Result<Bat> {
    let keep: std::collections::HashSet<u32> = (0..right.len())
        .map(|p| right.head_oid(p))
        .collect::<Result<_>>()?;
    let mut positions = Vec::new();
    for pos in 0..left.len() {
        if keep.contains(&left.head_oid(pos)?) {
            positions.push(pos);
        }
    }
    left.gather(&positions)
}

/// Anti-semijoin: keep the BUNs of `left` whose head oid does **not** occur
/// among `right`'s head oids.
pub fn antijoin(left: &Bat, right: &Bat) -> Result<Bat> {
    let drop: std::collections::HashSet<u32> = (0..right.len())
        .map(|p| right.head_oid(p))
        .collect::<Result<_>>()?;
    let mut positions = Vec::new();
    for pos in 0..left.len() {
        if !drop.contains(&left.head_oid(pos)?) {
            positions.push(pos);
        }
    }
    left.gather(&positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn fetch_join_dense_lookup() {
        // left: objects -> doc ids; right: dense doc id -> score
        let left = Bat::new(vec![100, 101], Column::from(vec![2u32, 0])).unwrap();
        let right = Bat::dense(Column::from(vec![0.5f64, 0.6, 0.7]));
        let out = fetch_join(&left, &right).unwrap();
        assert_eq!(out.head_oids(), vec![100, 101]);
        assert_eq!(out.tail().as_f64().unwrap(), &[0.7, 0.5]);
    }

    #[test]
    fn fetch_join_respects_base() {
        let left = Bat::dense(Column::from(vec![11u32, 10]));
        let right = Bat::dense_from(10, Column::from(vec![1.0f64, 2.0]));
        let out = fetch_join(&left, &right).unwrap();
        assert_eq!(out.tail().as_f64().unwrap(), &[2.0, 1.0]);
    }

    #[test]
    fn fetch_join_out_of_range_probe() {
        let left = Bat::dense(Column::from(vec![5u32]));
        let right = Bat::dense(Column::from(vec![1.0f64]));
        assert!(matches!(
            fetch_join(&left, &right),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn fetch_join_rejects_materialized_right() {
        let left = Bat::dense(Column::from(vec![0u32]));
        let right = Bat::new(vec![0], Column::from(vec![1.0f64])).unwrap();
        assert!(fetch_join(&left, &right).is_err());
    }

    #[test]
    fn hash_join_many_to_many() {
        let left = Bat::new(vec![1, 2, 3], Column::from(vec![7u32, 8, 7])).unwrap();
        let right = Bat::new(vec![7, 7, 9], Column::from(vec![70.0f64, 71.0, 90.0])).unwrap();
        let out = hash_join(&left, &right).unwrap();
        // left oid 1 matches right oid 7 twice; left oid 3 likewise; oid 2 none.
        assert_eq!(out.head_oids(), vec![1, 1, 3, 3]);
        assert_eq!(out.tail().as_f64().unwrap(), &[70.0, 71.0, 70.0, 71.0]);
    }

    #[test]
    fn hash_join_empty_sides() {
        let left = Bat::dense(Column::from(Vec::<u32>::new()));
        let right = Bat::dense(Column::from(vec![1.0f64]));
        assert!(hash_join(&left, &right).unwrap().is_empty());
    }

    #[test]
    fn semijoin_intersects_heads() {
        let left = Bat::new(vec![1, 2, 3, 4], Column::from(vec![0.1f64, 0.2, 0.3, 0.4])).unwrap();
        let right = Bat::new(vec![2, 4, 9], Column::from(vec![0u32, 0, 0])).unwrap();
        let out = semijoin(&left, &right).unwrap();
        assert_eq!(out.head_oids(), vec![2, 4]);
        assert_eq!(out.tail().as_f64().unwrap(), &[0.2, 0.4]);
    }

    #[test]
    fn antijoin_subtracts_heads() {
        let left = Bat::new(vec![1, 2, 3], Column::from(vec![0.1f64, 0.2, 0.3])).unwrap();
        let right = Bat::new(vec![2], Column::from(vec![0u32])).unwrap();
        let out = antijoin(&left, &right).unwrap();
        assert_eq!(out.head_oids(), vec![1, 3]);
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let left = Bat::new(vec![5, 6, 7, 8], Column::from(vec![1u32, 2, 3, 4])).unwrap();
        let right = Bat::new(vec![6, 8], Column::from(vec![0u32, 0])).unwrap();
        let semi = semijoin(&left, &right).unwrap();
        let anti = antijoin(&left, &right).unwrap();
        assert_eq!(semi.len() + anti.len(), left.len());
    }
}
