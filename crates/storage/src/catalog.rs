//! A named BAT registry.
//!
//! Flattened Moa plans refer to persistent BATs by name (the term–document
//! matrix, document lengths, fragment tables …). The catalog provides the
//! shared, thread-safe mapping from names to immutable BAT snapshots.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::bat::Bat;
use crate::error::{Result, StorageError};

/// Thread-safe name → BAT registry. BATs are immutable once registered;
/// re-registration under the same name is an error (use [`Catalog::replace`]).
#[derive(Debug, Default)]
pub struct Catalog {
    bats: RwLock<HashMap<String, Arc<Bat>>>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a BAT under `name`. Fails if the name is taken.
    pub fn register(&self, name: &str, bat: Bat) -> Result<Arc<Bat>> {
        let mut guard = self.bats.write();
        if guard.contains_key(name) {
            return Err(StorageError::DuplicateBat(name.to_owned()));
        }
        let arc = Arc::new(bat);
        guard.insert(name.to_owned(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Replace (or insert) the BAT under `name`, returning the previous one.
    pub fn replace(&self, name: &str, bat: Bat) -> Option<Arc<Bat>> {
        self.bats.write().insert(name.to_owned(), Arc::new(bat))
    }

    /// Look up a BAT by name.
    pub fn get(&self, name: &str) -> Result<Arc<Bat>> {
        self.bats
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownBat(name.to_owned()))
    }

    /// Remove a BAT, returning it if present.
    pub fn remove(&self, name: &str) -> Option<Arc<Bat>> {
        self.bats.write().remove(name)
    }

    /// Names of all registered BATs, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.bats.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered BATs.
    pub fn len(&self) -> usize {
        self.bats.read().len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.bats.read().is_empty()
    }

    /// Total payload bytes across all registered BATs.
    pub fn byte_size(&self) -> usize {
        self.bats.read().values().map(|b| b.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn bat() -> Bat {
        Bat::dense(Column::from(vec![1u32, 2, 3]))
    }

    #[test]
    fn register_and_get() {
        let cat = Catalog::new();
        cat.register("a", bat()).unwrap();
        assert_eq!(cat.get("a").unwrap().len(), 3);
    }

    #[test]
    fn duplicate_registration_fails() {
        let cat = Catalog::new();
        cat.register("a", bat()).unwrap();
        assert!(matches!(
            cat.register("a", bat()),
            Err(StorageError::DuplicateBat(_))
        ));
    }

    #[test]
    fn get_unknown_fails() {
        let cat = Catalog::new();
        assert!(matches!(cat.get("nope"), Err(StorageError::UnknownBat(_))));
    }

    #[test]
    fn replace_swaps() {
        let cat = Catalog::new();
        cat.register("a", bat()).unwrap();
        let old = cat.replace("a", Bat::dense(Column::from(vec![9u32])));
        assert_eq!(old.unwrap().len(), 3);
        assert_eq!(cat.get("a").unwrap().len(), 1);
    }

    #[test]
    fn remove_and_names() {
        let cat = Catalog::new();
        cat.register("b", bat()).unwrap();
        cat.register("a", bat()).unwrap();
        assert_eq!(cat.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(cat.remove("a").is_some());
        assert!(cat.remove("a").is_none());
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
    }

    #[test]
    fn byte_size_sums() {
        let cat = Catalog::new();
        cat.register("a", bat()).unwrap();
        cat.register("b", bat()).unwrap();
        assert_eq!(cat.byte_size(), 24);
    }

    #[test]
    fn concurrent_access() {
        use std::thread;
        let cat = std::sync::Arc::new(Catalog::new());
        cat.register("shared", bat()).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let cat = std::sync::Arc::clone(&cat);
                thread::spawn(move || {
                    for _ in 0..100 {
                        let b = cat.get("shared").unwrap();
                        assert_eq!(b.len(), 3);
                        let name = format!("t{i}");
                        cat.replace(&name, Bat::dense(Column::from(vec![i as u32])));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cat.len(), 9);
    }
}
