//! Fixed-width bit-packing kernels.
//!
//! The block-compressed posting storage (`moa_ir::blocks`) stores each
//! 128-entry block's document-id deltas and term frequencies as
//! fixed-width bit fields chosen per block. These are the untyped packing
//! primitives: append `count` values of `width` bits into a `u64` word
//! stream, and unpack them back. Values are laid out LSB-first and may
//! straddle word boundaries; a width of 0 stores nothing at all (every
//! value is 0 — the all-equal-gaps case delta encoding produces on
//! consecutive runs).
//!
//! The kernels are branch-light and allocation-free on the unpack side so
//! a per-block decode stays in the tens of nanoseconds; correctness is
//! pinned by exhaustive width sweeps below and by the round-trip proptest
//! in `crates/ir/tests/proptest_blocks.rs`.

/// Number of bits needed to represent `v` (0 for 0).
#[inline]
pub fn bits_for(v: u32) -> u8 {
    (32 - v.leading_zeros()) as u8
}

/// Number of `u64` words `count` values of `width` bits occupy.
#[inline]
pub fn words_for(count: usize, width: u8) -> usize {
    (count * width as usize).div_ceil(64)
}

/// Append `values` packed at `width` bits each onto `out`, starting at a
/// fresh word boundary. Exactly [`words_for`]`(values.len(), width)` words
/// are pushed. Each value must fit in `width` bits (debug-asserted).
pub fn pack_into(values: &[u32], width: u8, out: &mut Vec<u64>) {
    if width == 0 {
        debug_assert!(values.iter().all(|&v| v == 0), "width-0 value non-zero");
        return;
    }
    let w = u32::from(width);
    debug_assert!(values.iter().all(|&v| w == 32 || v < (1u32 << w) || v == 0));
    let mut acc = 0u64;
    let mut used = 0u32;
    for &v in values {
        acc |= u64::from(v) << used;
        used += w;
        if used >= 64 {
            out.push(acc);
            used -= 64;
            // Bits of `v` that did not fit in the flushed word.
            acc = if used > 0 {
                u64::from(v) >> (w - used)
            } else {
                0
            };
        }
    }
    if used > 0 {
        out.push(acc);
    }
}

/// Unpack `count` values of `width` bits from `words` into `out[..count]`.
/// `words` must hold at least [`words_for`]`(count, width)` words.
#[inline]
pub fn unpack_from(words: &[u64], width: u8, count: usize, out: &mut [u32]) {
    if width == 0 {
        out[..count].fill(0);
        return;
    }
    let w = u32::from(width);
    let mask = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
    let mut word = 0usize;
    let mut off = 0u32;
    for slot in out.iter_mut().take(count) {
        let mut bits = words[word] >> off;
        if off + w > 64 {
            bits |= words[word + 1] << (64 - off);
        }
        *slot = (bits as u32) & mask;
        off += w;
        if off >= 64 {
            off -= 64;
            word += 1;
        }
    }
}

/// Unpack the single value at position `idx` of a packed stream — the
/// point-lookup the lazy tf decode uses: a pruned query that scores one
/// posting out of a block pays one two-word read instead of a 128-value
/// bulk unpack.
#[inline]
pub fn unpack_one(words: &[u64], width: u8, idx: usize) -> u32 {
    if width == 0 {
        return 0;
    }
    let w = u32::from(width);
    let mask = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
    let bit = idx * width as usize;
    let word = bit >> 6;
    let off = (bit & 63) as u32;
    let mut bits = words[word] >> off;
    if off + w > 64 {
        bits |= words[word + 1] << (64 - off);
    }
    (bits as u32) & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32], width: u8) {
        let mut words = Vec::new();
        pack_into(values, width, &mut words);
        assert_eq!(words.len(), words_for(values.len(), width));
        let mut out = vec![u32::MAX; values.len()];
        unpack_from(&words, width, values.len(), &mut out);
        assert_eq!(out, values, "width {width}");
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(unpack_one(&words, width, i), v, "width {width} idx {i}");
        }
    }

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u32::MAX), 32);
    }

    #[test]
    fn every_width_roundtrips() {
        for width in 0u8..=32 {
            let max = if width == 0 {
                0
            } else if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            // Values exercising both halves of every straddled word.
            let values: Vec<u32> = (0..200u32)
                .map(|i| {
                    if width == 0 {
                        0
                    } else {
                        (i.wrapping_mul(2654435761)) & max
                    }
                })
                .collect();
            roundtrip(&values, width);
            // Edge lengths: empty, one value, exact word multiples.
            roundtrip(&[], width);
            roundtrip(&[max], width);
            if width > 0 {
                let exact = 64usize / usize::from(width) * usize::from(width);
                roundtrip(&vec![max; exact.max(1)], width);
            }
        }
    }

    #[test]
    fn width_zero_is_free() {
        let mut words = Vec::new();
        pack_into(&[0; 128], 0, &mut words);
        assert!(words.is_empty());
        let mut out = [7u32; 128];
        unpack_from(&[], 0, 128, &mut out);
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn packed_streams_concatenate() {
        // Blocks are packed back to back at word granularity: unpacking
        // each segment from its own offset recovers each block.
        let a: Vec<u32> = (0..128).map(|i| i % 13).collect();
        let b: Vec<u32> = (0..100).map(|i| i % 250).collect();
        let mut words = Vec::new();
        pack_into(&a, 4, &mut words);
        let b_off = words.len();
        pack_into(&b, 8, &mut words);
        let mut out_a = vec![0u32; a.len()];
        unpack_from(&words, 4, a.len(), &mut out_a);
        assert_eq!(out_a, a);
        let mut out_b = vec![0u32; b.len()];
        unpack_from(&words[b_off..], 8, b.len(), &mut out_b);
        assert_eq!(out_b, b);
    }
}
