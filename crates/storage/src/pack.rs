//! Fixed-width bit-packing kernels.
//!
//! The block-compressed posting storage (`moa_ir::blocks`) stores each
//! 128-entry block's document-id deltas and term frequencies as
//! fixed-width bit fields chosen per block. These are the untyped packing
//! primitives: append `count` values of `width` bits into a `u64` word
//! stream, and unpack them back. Values are laid out LSB-first and may
//! straddle word boundaries; a width of 0 stores nothing at all (every
//! value is 0 — the all-equal-gaps case delta encoding produces on
//! consecutive runs).
//!
//! The unpack side is written as word-parallel kernels: widths are
//! dispatched to a const-generic loop whose shift amounts and masks fold
//! at compile time. Widths that divide 64 decode one whole word per
//! iteration into `64 / width` independent lanes (no value ever straddles
//! a word, so the inner loop is branch-free and autovectorizes); the
//! remaining widths decode four lanes per iteration through branch-free
//! two-word windows (`(lo >> off) | ((hi << 1) << (63 − off))` — defined
//! for every `off` in `0..64`, no straddle test). A fused
//! [`unpack_deltas_prefix_sum`] turns gap decoding + prefix sum into one
//! call, with the width-0 case collapsing to a pure arithmetic fill that
//! never touches the payload. Correctness is pinned by exhaustive width
//! sweeps below and by the round-trip proptest in
//! `crates/ir/tests/proptest_blocks.rs`.

/// Number of bits needed to represent `v` (0 for 0).
#[inline]
pub fn bits_for(v: u32) -> u8 {
    (32 - v.leading_zeros()) as u8
}

/// Number of `u64` words `count` values of `width` bits occupy.
#[inline]
pub fn words_for(count: usize, width: u8) -> usize {
    (count * width as usize).div_ceil(64)
}

/// Append `values` packed at `width` bits each onto `out`, starting at a
/// fresh word boundary. Exactly [`words_for`]`(values.len(), width)` words
/// are pushed. Each value must fit in `width` bits (debug-asserted).
pub fn pack_into(values: &[u32], width: u8, out: &mut Vec<u64>) {
    if width == 0 {
        debug_assert!(values.iter().all(|&v| v == 0), "width-0 value non-zero");
        return;
    }
    let w = usize::from(width);
    debug_assert!(values
        .iter()
        .all(|&v| width == 32 || v < (1u32 << u32::from(width))));
    // Zero-fill the destination words, then scatter each value by bit
    // position: the low part ORs into its word, and straddling high bits
    // (when present) OR into the next word. Writing into pre-sized words
    // instead of carrying an accumulator keeps every iteration
    // independent apart from the destination OR.
    let start = out.len();
    out.resize(start + words_for(values.len(), width), 0);
    let words = &mut out[start..];
    for (i, &v) in values.iter().enumerate() {
        let bit = i * w;
        let wd = bit >> 6;
        let off = (bit & 63) as u32;
        words[wd] |= u64::from(v) << off;
        if off as usize + w > 64 {
            words[wd + 1] |= u64::from(v) >> (64 - off);
        }
    }
}

/// Word-parallel unpack of `count` values at a const width `W`.
///
/// Two shapes, selected at compile time:
/// * `64 % W == 0`: one source word per iteration, `64 / W` lanes pulled
///   out by constant shifts — no value straddles a word, the loop body is
///   branch-free and a straight-line candidate for autovectorization.
/// * otherwise: four lanes per iteration, each reading a two-word window
///   combined branch-free (`(hi << 1) << (63 − off)` sidesteps the
///   undefined 64-bit shift at `off == 0`); a scalar tail covers the last
///   values whose second window word may not exist.
#[inline]
fn unpack_w<const W: u32>(words: &[u64], count: usize, out: &mut [u32]) {
    let mask: u64 = if W == 32 {
        u64::from(u32::MAX)
    } else {
        (1u64 << W) - 1
    };
    let out = &mut out[..count];
    if 64 % W == 0 {
        let per = (64 / W) as usize;
        let full = count / per;
        for (chunk, &w) in out.chunks_exact_mut(per).zip(words.iter()).take(full) {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = ((w >> (k as u32 * W)) & mask) as u32;
            }
        }
        let done = full * per;
        if done < count {
            let w = words[full];
            for (k, slot) in out[done..].iter_mut().enumerate() {
                *slot = ((w >> (k as u32 * W)) & mask) as u32;
            }
        }
        return;
    }
    let mut i = 0usize;
    if words.len() >= 2 {
        // Lane `j` reads words `wd` and `wd + 1`; the window read is safe
        // while the lane's start bit lies before the final word.
        let limit_bits = 64 * (words.len() - 1);
        while i + 4 <= count && (i + 3) * (W as usize) < limit_bits {
            for j in 0..4 {
                let bit = (i + j) * W as usize;
                let wd = bit >> 6;
                let off = (bit & 63) as u32;
                let bits = (words[wd] >> off) | ((words[wd + 1] << 1) << (63 - off));
                out[i + j] = (bits & mask) as u32;
            }
            i += 4;
        }
    }
    while i < count {
        let bit = i * W as usize;
        let wd = bit >> 6;
        let off = (bit & 63) as u32;
        let mut bits = words[wd] >> off;
        if off + W > 64 {
            bits |= words[wd + 1] << (64 - off);
        }
        out[i] = (bits & mask) as u32;
        i += 1;
    }
}

/// Fallback scalar unpack for widths without a specialized instantiation.
fn unpack_generic(words: &[u64], width: u32, count: usize, out: &mut [u32]) {
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    let mut word = 0usize;
    let mut off = 0u32;
    for slot in out.iter_mut().take(count) {
        let mut bits = words[word] >> off;
        if off + width > 64 {
            bits |= words[word + 1] << (64 - off);
        }
        *slot = (bits as u32) & mask;
        off += width;
        if off >= 64 {
            off -= 64;
            word += 1;
        }
    }
}

/// Unpack `count` values of `width` bits from `words` into `out[..count]`.
/// `words` must hold at least [`words_for`]`(count, width)` words.
/// Dispatches to a width-specialized word-parallel kernel for every width
/// the posting encoder produces in practice.
#[inline]
pub fn unpack_from(words: &[u64], width: u8, count: usize, out: &mut [u32]) {
    macro_rules! dispatch {
        ($($w:literal),*) => {
            match width {
                0 => out[..count].fill(0),
                $($w => unpack_w::<$w>(words, count, out),)*
                w => unpack_generic(words, u32::from(w), count, out),
            }
        };
    }
    dispatch!(
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 32
    )
}

/// Fused gap decode: unpack `count` deltas of `width` bits and prefix-sum
/// them into absolute document ids in one call —
/// `out[0] = first`, `out[i] = out[i−1] + delta[i] + 1` (the block
/// encoder stores `gap − 1` with a leading 0 slot). The width-0 case —
/// consecutive ids, the densest runs — is a pure arithmetic fill that
/// never reads the payload at all.
#[inline]
pub fn unpack_deltas_prefix_sum(
    words: &[u64],
    width: u8,
    count: usize,
    first: u32,
    out: &mut [u32],
) {
    if count == 0 {
        return;
    }
    if width == 0 {
        let mut d = first;
        for slot in out[..count].iter_mut() {
            *slot = d;
            d = d.wrapping_add(1);
        }
        return;
    }
    unpack_from(words, width, count, out);
    let mut d = first;
    out[0] = d;
    for slot in out[1..count].iter_mut() {
        d = d + *slot + 1;
        *slot = d;
    }
}

/// Unpack the `count` values starting at position `start` of a packed
/// stream into `out[..count]` — the mini-block granular decode the cursor
/// tf path uses: a pruned query that scores one posting of a block pays a
/// 16-value decode of that posting's mini-block, not a 128-value bulk
/// unpack.
#[inline]
pub fn unpack_slice(words: &[u64], width: u8, start: usize, count: usize, out: &mut [u32]) {
    if width == 0 {
        out[..count].fill(0);
        return;
    }
    let w = u32::from(width);
    let mask = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
    let mut bit = start * width as usize;
    for slot in out.iter_mut().take(count) {
        let word = bit >> 6;
        let off = (bit & 63) as u32;
        let mut bits = words[word] >> off;
        if off + w > 64 {
            bits |= words[word + 1] << (64 - off);
        }
        *slot = (bits as u32) & mask;
        bit += width as usize;
    }
}

/// Unpack the single value at position `idx` of a packed stream — the
/// point lookup used by spot checks and the bound-table builder.
#[inline]
pub fn unpack_one(words: &[u64], width: u8, idx: usize) -> u32 {
    if width == 0 {
        return 0;
    }
    let w = u32::from(width);
    let mask = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
    let bit = idx * width as usize;
    let word = bit >> 6;
    let off = (bit & 63) as u32;
    let mut bits = words[word] >> off;
    if off + w > 64 {
        bits |= words[word + 1] << (64 - off);
    }
    (bits as u32) & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32], width: u8) {
        let mut words = Vec::new();
        pack_into(values, width, &mut words);
        assert_eq!(words.len(), words_for(values.len(), width));
        let mut out = vec![u32::MAX; values.len()];
        unpack_from(&words, width, values.len(), &mut out);
        assert_eq!(out, values, "width {width}");
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(unpack_one(&words, width, i), v, "width {width} idx {i}");
        }
        // unpack_slice agrees on every aligned 16-value window.
        let mut win = [0u32; 16];
        for start in (0..values.len()).step_by(16) {
            let n = (values.len() - start).min(16);
            unpack_slice(&words, width, start, n, &mut win);
            assert_eq!(
                &win[..n],
                &values[start..start + n],
                "width {width} start {start}"
            );
        }
    }

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u32::MAX), 32);
    }

    #[test]
    fn every_width_roundtrips() {
        for width in 0u8..=32 {
            let max = if width == 0 {
                0
            } else if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            // Values exercising both halves of every straddled word.
            let values: Vec<u32> = (0..200u32)
                .map(|i| {
                    if width == 0 {
                        0
                    } else {
                        (i.wrapping_mul(2654435761)) & max
                    }
                })
                .collect();
            roundtrip(&values, width);
            // Edge lengths: empty, one value, exact word multiples.
            roundtrip(&[], width);
            roundtrip(&[max], width);
            if width > 0 {
                let exact = 64usize / usize::from(width) * usize::from(width);
                roundtrip(&vec![max; exact.max(1)], width);
            }
        }
    }

    #[test]
    fn width_zero_is_free() {
        let mut words = Vec::new();
        pack_into(&[0; 128], 0, &mut words);
        assert!(words.is_empty());
        let mut out = [7u32; 128];
        unpack_from(&[], 0, 128, &mut out);
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn packed_streams_concatenate() {
        // Blocks are packed back to back at word granularity: unpacking
        // each segment from its own offset recovers each block.
        let a: Vec<u32> = (0..128).map(|i| i % 13).collect();
        let b: Vec<u32> = (0..100).map(|i| i % 250).collect();
        let mut words = Vec::new();
        pack_into(&a, 4, &mut words);
        let b_off = words.len();
        pack_into(&b, 8, &mut words);
        let mut out_a = vec![0u32; a.len()];
        unpack_from(&words, 4, a.len(), &mut out_a);
        assert_eq!(out_a, a);
        let mut out_b = vec![0u32; b.len()];
        unpack_from(&words[b_off..], 8, b.len(), &mut out_b);
        assert_eq!(out_b, b);
    }

    fn fused_reference(deltas: &[u32], first: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(deltas.len());
        let mut d = first;
        out.push(d);
        for &g in &deltas[1..] {
            d = d + g + 1;
            out.push(d);
        }
        out
    }

    #[test]
    fn fused_prefix_sum_matches_two_pass_decode() {
        for width in 1u8..=20 {
            let max = (1u64 << width) as u32 - 1;
            for n in [1usize, 2, 15, 16, 17, 64, 127, 128] {
                let mut deltas: Vec<u32> = (0..n as u32)
                    .map(|i| (i.wrapping_mul(2654435761)) & max)
                    .collect();
                deltas[0] = 0; // encoder stores a leading 0 slot
                let mut words = Vec::new();
                pack_into(&deltas, width, &mut words);
                let mut out = vec![u32::MAX; n];
                unpack_deltas_prefix_sum(&words, width, n, 42, &mut out);
                assert_eq!(out, fused_reference(&deltas, 42), "width {width} n {n}");
            }
        }
    }

    #[test]
    fn fused_width_zero_is_an_arithmetic_fill() {
        // Equal gaps pack at width 0: the fused decode must produce the
        // consecutive run without reading any payload words.
        let mut out = [0u32; 128];
        unpack_deltas_prefix_sum(&[], 0, 128, 1000, &mut out);
        for (i, &d) in out.iter().enumerate() {
            assert_eq!(d, 1000 + i as u32);
        }
        let mut none: [u32; 4] = [7; 4];
        unpack_deltas_prefix_sum(&[], 0, 0, 5, &mut none);
        assert_eq!(none, [7; 4], "count 0 writes nothing");
    }

    #[test]
    fn unpack_slice_covers_unaligned_windows() {
        let values: Vec<u32> = (0..200u32).map(|i| i.wrapping_mul(7919) & 0x1FFF).collect();
        for width in [13u8, 7, 16, 32] {
            let capped: Vec<u32> = values
                .iter()
                .map(|&v| {
                    if width == 32 {
                        v
                    } else {
                        v & ((1u32 << width) - 1)
                    }
                })
                .collect();
            let mut words = Vec::new();
            pack_into(&capped, width, &mut words);
            let mut out = [0u32; 40];
            for start in [0usize, 1, 13, 63, 64, 65, 199] {
                let n = (capped.len() - start).min(40);
                unpack_slice(&words, width, start, n, &mut out);
                assert_eq!(&out[..n], &capped[start..start + n], "w {width} s {start}");
            }
        }
    }
}
