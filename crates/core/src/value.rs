//! Structured values of the Moa algebra.
//!
//! Moa is a *structured object algebra*: atomic values composed into LIST,
//! BAG, SET and TUPLE structures, each owned by an extension that defines
//! its operators. The MM extension adds RANKED lists of `(object, score)`
//! pairs — the result type of content ranking.
//!
//! BAGs and SETs are *unordered*; their canonical storage order (sorted)
//! makes structural equality coincide with semantic equality, which the
//! optimizer-correctness property tests rely on.

use std::cmp::Ordering;
use std::fmt;

/// A value of the algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer atom.
    Int(i64),
    /// 64-bit float atom.
    Float(f64),
    /// String atom.
    Str(String),
    /// Boolean atom.
    Bool(bool),
    /// Ordered list (the order is semantic).
    List(Vec<Value>),
    /// Multiset in canonical (sorted) order.
    Bag(Vec<Value>),
    /// Deduplicated set in canonical (sorted) order.
    Set(Vec<Value>),
    /// Heterogeneous tuple.
    Tuple(Vec<Value>),
    /// MM extension: documents ranked by descending score.
    Ranked(Vec<(u32, f64)>),
}

impl Value {
    /// Construct a list (order preserved).
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(items)
    }

    /// Construct a bag; items are canonicalized (sorted).
    pub fn bag(mut items: Vec<Value>) -> Value {
        items.sort_by(Value::total_cmp);
        Value::Bag(items)
    }

    /// Construct a set; items are canonicalized (sorted, deduplicated).
    pub fn set(mut items: Vec<Value>) -> Value {
        items.sort_by(Value::total_cmp);
        items.dedup();
        Value::Set(items)
    }

    /// Construct a ranked list; pairs are sorted by descending score (ties
    /// by ascending object id).
    pub fn ranked(mut items: Vec<(u32, f64)>) -> Value {
        items.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Value::Ranked(items)
    }

    /// Convenience: a list of integer atoms.
    pub fn int_list(items: impl IntoIterator<Item = i64>) -> Value {
        Value::List(items.into_iter().map(Value::Int).collect())
    }

    /// A deterministic total order over all values (used for canonical
    /// forms and sorting). Values of different variants order by variant
    /// tag; `Float` uses `total_cmp`.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Int(_) => 0,
                Value::Float(_) => 1,
                Value::Str(_) => 2,
                Value::Bool(_) => 3,
                Value::List(_) => 4,
                Value::Bag(_) => 5,
                Value::Set(_) => 6,
                Value::Tuple(_) => 7,
                Value::Ranked(_) => 8,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::List(a), Value::List(b))
            | (Value::Bag(a), Value::Bag(b))
            | (Value::Set(a), Value::Set(b))
            | (Value::Tuple(a), Value::Tuple(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.total_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Ranked(a), Value::Ranked(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.0.cmp(&y.0).then(x.1.total_cmp(&y.1));
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => tag(self).cmp(&tag(other)),
        }
    }

    /// The number of elements of a collection value; 1 for atoms.
    pub fn cardinality(&self) -> usize {
        match self {
            Value::List(v) | Value::Bag(v) | Value::Set(v) | Value::Tuple(v) => v.len(),
            Value::Ranked(v) => v.len(),
            _ => 1,
        }
    }

    /// Whether the value's elements are in non-decreasing `total_cmp`
    /// order. Atoms are trivially sorted; a `Ranked` value is "sorted" in
    /// its own (descending score) sense and reports `true` by construction.
    pub fn is_sorted_asc(&self) -> bool {
        match self {
            Value::List(v) | Value::Bag(v) | Value::Set(v) => v
                .windows(2)
                .all(|w| w[0].total_cmp(&w[1]) != Ordering::Greater),
            Value::Ranked(v) => v
                .windows(2)
                .all(|w| w[0].1.total_cmp(&w[1].1) != Ordering::Less),
            _ => true,
        }
    }

    /// Borrow list elements, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow bag elements, if this is a bag.
    pub fn as_bag(&self) -> Option<&[Value]> {
        match self {
            Value::Bag(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow set elements, if this is a set.
    pub fn as_set(&self) -> Option<&[Value]> {
        match self {
            Value::Set(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow ranked pairs, if this is a ranked list.
    pub fn as_ranked(&self) -> Option<&[(u32, f64)]> {
        match self {
            Value::Ranked(v) => Some(v),
            _ => None,
        }
    }

    /// The integer payload, if an `Int` atom.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload (accepting `Int` with widening), if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn seq(
            f: &mut fmt::Formatter<'_>,
            open: &str,
            items: &[Value],
            close: &str,
        ) -> fmt::Result {
            f.write_str(open)?;
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{v}")?;
            }
            f.write_str(close)
        }
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::List(v) => seq(f, "[", v, "]"),
            Value::Bag(v) => seq(f, "{|", v, "|}"),
            Value::Set(v) => seq(f, "{", v, "}"),
            Value::Tuple(v) => seq(f, "(", v, ")"),
            Value::Ranked(v) => {
                f.write_str("rank[")?;
                for (i, (o, s)) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{o}:{s:.4}")?;
                }
                f.write_str("]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_equality_is_order_insensitive() {
        let a = Value::bag(vec![Value::Int(3), Value::Int(1), Value::Int(2)]);
        let b = Value::bag(vec![Value::Int(2), Value::Int(3), Value::Int(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn bag_keeps_duplicates_set_drops_them() {
        let bag = Value::bag(vec![Value::Int(1), Value::Int(1)]);
        let set = Value::set(vec![Value::Int(1), Value::Int(1)]);
        assert_eq!(bag.cardinality(), 2);
        assert_eq!(set.cardinality(), 1);
    }

    #[test]
    fn list_order_is_semantic() {
        let a = Value::int_list([1, 2]);
        let b = Value::int_list([2, 1]);
        assert_ne!(a, b);
    }

    #[test]
    fn ranked_sorts_descending_with_id_ties() {
        let r = Value::ranked(vec![(5, 0.5), (1, 0.9), (3, 0.5)]);
        assert_eq!(r.as_ranked().unwrap(), &[(1, 0.9), (3, 0.5), (5, 0.5)]);
        assert!(r.is_sorted_asc());
    }

    #[test]
    fn total_cmp_orders_variants_and_values() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Int(2)), Ordering::Less);
        assert_eq!(
            Value::Int(9).total_cmp(&Value::Float(0.0)),
            Ordering::Less // variant tag order
        );
        assert_eq!(
            Value::int_list([1, 2]).total_cmp(&Value::int_list([1, 2, 3])),
            Ordering::Less
        );
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Str("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn sortedness_detection() {
        assert!(Value::int_list([1, 2, 2, 3]).is_sorted_asc());
        assert!(!Value::int_list([2, 1]).is_sorted_asc());
        assert!(Value::Int(5).is_sorted_asc());
        // Bags/sets are canonical, hence always sorted.
        assert!(Value::bag(vec![Value::Int(9), Value::Int(1)]).is_sorted_asc());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(0.5).as_float(), Some(0.5));
        assert!(Value::Bool(true).as_float().is_none());
        assert!(Value::int_list([1]).as_list().is_some());
        assert!(Value::int_list([1]).as_bag().is_none());
        assert!(Value::bag(vec![]).as_bag().is_some());
        assert!(Value::set(vec![]).as_set().is_some());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int_list([1, 2]).to_string(), "[1, 2]");
        assert_eq!(
            Value::bag(vec![Value::Int(2), Value::Int(1)]).to_string(),
            "{|1, 2|}"
        );
        assert_eq!(Value::set(vec![Value::Int(1)]).to_string(), "{1}");
        assert_eq!(
            Value::Tuple(vec![Value::Int(1), Value::Bool(false)]).to_string(),
            "(1, false)"
        );
        assert_eq!(Value::ranked(vec![(2, 0.25)]).to_string(), "rank[2:0.2500]");
    }

    #[test]
    fn cardinality_of_atoms_and_collections() {
        assert_eq!(Value::Int(1).cardinality(), 1);
        assert_eq!(Value::int_list([1, 2, 3]).cardinality(), 3);
        assert_eq!(Value::ranked(vec![(1, 0.1), (2, 0.2)]).cardinality(), 2);
    }

    #[test]
    fn float_nan_canonicalization_is_stable() {
        let a = Value::bag(vec![Value::Float(f64::NAN), Value::Float(1.0)]);
        let b = Value::bag(vec![Value::Float(1.0), Value::Float(f64::NAN)]);
        // total_cmp makes NaN placement deterministic, so the canonical
        // orders agree structurally.
        assert_eq!(a.total_cmp(&b), Ordering::Equal);
    }
}
