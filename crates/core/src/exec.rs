//! Expression evaluation and type inference.

use std::collections::HashMap;

use crate::error::{CoreError, Result};
use crate::expr::Expr;
use crate::ext::{ExecContext, Registry};
use crate::types::MoaType;
use crate::value::Value;

/// A binding environment for free variables.
#[derive(Debug, Clone, Default)]
pub struct Env {
    bindings: HashMap<String, Value>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Bind a name to a value (replacing any previous binding).
    pub fn bind(&mut self, name: &str, value: Value) -> &mut Env {
        self.bindings.insert(name.to_owned(), value);
        self
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.bindings.get(name)
    }

    /// The types of all bindings (for type inference).
    pub fn type_env(&self) -> HashMap<String, MoaType> {
        self.bindings
            .iter()
            .map(|(k, v)| (k.clone(), MoaType::of(v)))
            .collect()
    }
}

/// Evaluate an expression under an environment, accumulating work into the
/// context.
pub fn evaluate(
    expr: &Expr,
    env: &Env,
    registry: &Registry,
    ctx: &mut ExecContext,
) -> Result<Value> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::UnboundVar(name.clone())),
        Expr::Apply { ext, op, args } => {
            let mut arg_values = Vec::with_capacity(args.len());
            for a in args {
                arg_values.push(evaluate(a, env, registry, ctx)?);
            }
            registry.get(*ext)?.evaluate(op, &arg_values, ctx)
        }
    }
}

/// Infer the type of an expression given variable types.
pub fn infer_type(
    expr: &Expr,
    var_types: &HashMap<String, MoaType>,
    registry: &Registry,
) -> Result<MoaType> {
    match expr {
        Expr::Const(v) => Ok(MoaType::of(v)),
        Expr::Var(name) => var_types
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::UnboundVar(name.clone())),
        Expr::Apply { ext, op, args } => {
            let mut arg_types = Vec::with_capacity(args.len());
            for a in args {
                arg_types.push(infer_type(a, var_types, registry)?);
            }
            registry.get(*ext)?.type_check(op, &arg_types)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExtensionId;

    fn registry() -> Registry {
        Registry::standard()
    }

    #[test]
    fn evaluates_papers_example_expression() {
        // select(projecttobag([1,2,3,4,4,5]), 2, 4) = {2,3,4,4}
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::constant(Value::int_list([1, 2, 3, 4, 4, 5]))),
            Value::Int(2),
            Value::Int(4),
        );
        let mut ctx = ExecContext::new();
        let out = evaluate(&e, &Env::new(), &registry(), &mut ctx).unwrap();
        assert_eq!(
            out,
            Value::bag(vec![
                Value::Int(2),
                Value::Int(3),
                Value::Int(4),
                Value::Int(4)
            ])
        );
        assert!(ctx.elements_processed > 0);
    }

    #[test]
    fn variables_resolve_through_env() {
        let e = Expr::list_length(Expr::var("l"));
        let mut env = Env::new();
        env.bind("l", Value::int_list([1, 2, 3]));
        let out = evaluate(&e, &env, &registry(), &mut ExecContext::new()).unwrap();
        assert_eq!(out, Value::Int(3));
    }

    #[test]
    fn unbound_variable_errors() {
        let e = Expr::var("missing");
        assert_eq!(
            evaluate(&e, &Env::new(), &registry(), &mut ExecContext::new()),
            Err(CoreError::UnboundVar("missing".into()))
        );
        assert!(infer_type(&e, &HashMap::new(), &registry()).is_err());
    }

    #[test]
    fn type_inference_on_nested_expression() {
        let e = Expr::bag_count(Expr::projecttobag(Expr::constant(Value::int_list([1, 2]))));
        let t = infer_type(&e, &HashMap::new(), &registry()).unwrap();
        assert_eq!(t, MoaType::Int);
    }

    #[test]
    fn type_inference_rejects_ill_typed() {
        // BAG.count over a LIST (not projected) is a type error.
        let e = Expr::bag_count(Expr::constant(Value::int_list([1])));
        assert!(infer_type(&e, &HashMap::new(), &registry()).is_err());
    }

    #[test]
    fn type_inference_uses_var_types() {
        let e = Expr::list_length(Expr::var("l"));
        let mut vt = HashMap::new();
        vt.insert("l".to_string(), MoaType::List(Box::new(MoaType::Int)));
        assert_eq!(infer_type(&e, &vt, &registry()).unwrap(), MoaType::Int);
    }

    #[test]
    fn env_rebinding_overwrites() {
        let mut env = Env::new();
        env.bind("x", Value::Int(1));
        env.bind("x", Value::Int(2));
        assert_eq!(env.get("x"), Some(&Value::Int(2)));
        assert_eq!(env.type_env()["x"], MoaType::Int);
    }

    #[test]
    fn work_accumulates_across_nested_ops() {
        let inner = Expr::list_select(
            Expr::constant(Value::int_list([1, 2, 3, 4, 5])),
            Value::Int(2),
            Value::Int(4),
        );
        let e = Expr::apply(ExtensionId::List, "sort", vec![inner]);
        let mut ctx = ExecContext::new();
        evaluate(&e, &Env::new(), &registry(), &mut ctx).unwrap();
        assert!(ctx.elements_processed >= 5);
    }
}
