//! Plan rendering for EXPLAIN output.

use crate::expr::Expr;

/// Render an expression as an indented operator tree.
pub fn render(expr: &Expr) -> String {
    let mut out = String::new();
    render_into(expr, 0, &mut out);
    out
}

fn render_into(expr: &Expr, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match expr {
        Expr::Const(v) => {
            let s = v.to_string();
            let shown = if s.len() > 48 {
                format!(
                    "{}… ({} elements)",
                    &s[..s
                        .char_indices()
                        .take_while(|(i, _)| *i < 45)
                        .map(|(i, c)| i + c.len_utf8())
                        .last()
                        .unwrap_or(0)],
                    v.cardinality()
                )
            } else {
                s
            };
            out.push_str(&format!("{pad}const {shown}\n"));
        }
        Expr::Var(name) => out.push_str(&format!("{pad}var ${name}\n")),
        Expr::Apply { ext, op, args } => {
            out.push_str(&format!("{pad}{ext}.{op}\n"));
            for a in args {
                render_into(a, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn renders_nested_tree() {
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::var("l")),
            Value::Int(2),
            Value::Int(4),
        );
        let s = render(&e);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "BAG.select");
        assert_eq!(lines[1], "  LIST.projecttobag");
        assert_eq!(lines[2], "    var $l");
        assert_eq!(lines[3], "  const 2");
        assert_eq!(lines[4], "  const 4");
    }

    #[test]
    fn long_constants_are_elided() {
        let big: Vec<Value> = (0..1000).map(Value::Int).collect();
        let e = Expr::constant(Value::List(big));
        let s = render(&e);
        assert!(s.contains("(1000 elements)"), "{s}");
        assert!(s.len() < 200);
    }
}
