//! A concrete syntax for algebra expressions.
//!
//! Round-trips the `Display` form of [`Expr`]: operator applications are
//! `EXT.op(arg, …)`, variables are `$name`, and literals cover integers,
//! floats, strings, booleans, and the collection constructors
//! `[…]` (list), `{|…|}` (bag), `{…}` (set), `(…)` (tuple).
//!
//! ```
//! use moa_core::parse::parse_expr;
//!
//! let e = parse_expr("BAG.select(LIST.projecttobag($l), 2, 4)").unwrap();
//! assert_eq!(e.to_string(), "BAG.select(LIST.projecttobag($l), 2, 4)");
//! ```

use crate::error::{CoreError, Result};
use crate::expr::{Expr, ExtensionId};
use crate::value::Value;

/// Parse an expression from its concrete syntax.
pub fn parse_expr(input: &str) -> Result<Expr> {
    let mut p = Parser::new(input);
    let e = p.expr()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input"));
    }
    Ok(e)
}

struct Parser<'s> {
    src: &'s [u8],
    pos: usize,
}

impl<'s> Parser<'s> {
    fn new(src: &'s str) -> Parser<'s> {
        Parser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> CoreError {
        CoreError::Runtime(format!("parse error at byte {}: {msg}", self.pos))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", c as char)))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii identifier")
            .to_owned())
    }

    fn expr(&mut self) -> Result<Expr> {
        self.skip_ws();
        match self.peek() {
            Some(b'$') => {
                self.bump();
                let name = self.ident()?;
                Ok(Expr::Var(name))
            }
            Some(c) if c.is_ascii_uppercase() => {
                // Could be an extension application or a bare literal like
                // `true`? Booleans are lowercase, so uppercase = extension.
                let ext_name = self.ident()?;
                let ext = match ext_name.as_str() {
                    "LIST" => ExtensionId::List,
                    "BAG" => ExtensionId::Bag,
                    "SET" => ExtensionId::Set,
                    "TUPLE" => ExtensionId::Tuple,
                    "MMRANK" => ExtensionId::MmRank,
                    other => return Err(self.error(&format!("unknown extension {other}"))),
                };
                self.expect(b'.')?;
                let op = self.ident()?;
                self.expect(b'(')?;
                let mut args = Vec::new();
                if !self.eat(b')') {
                    loop {
                        args.push(self.expr()?);
                        if self.eat(b')') {
                            break;
                        }
                        self.expect(b',')?;
                    }
                }
                Ok(Expr::Apply { ext, op, args })
            }
            _ => Ok(Expr::Const(self.value()?)),
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'[') => {
                self.bump();
                Ok(Value::List(self.value_seq(b']')?))
            }
            Some(b'{') => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    let items = self.value_seq_until_bag()?;
                    Ok(Value::bag(items))
                } else {
                    Ok(Value::set(self.value_seq(b'}')?))
                }
            }
            Some(b'(') => {
                self.bump();
                Ok(Value::Tuple(self.value_seq(b')')?))
            }
            Some(b'"') => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            _ => return Err(self.error("bad escape")),
                        },
                        Some(c) => s.push(c as char),
                        None => return Err(self.error("unterminated string")),
                    }
                }
                Ok(Value::Str(s))
            }
            Some(b't') | Some(b'f') => {
                let word = self.ident()?;
                match word.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    other => Err(self.error(&format!("unexpected word {other}"))),
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn value_seq(&mut self, close: u8) -> Result<Vec<Value>> {
        let mut items = Vec::new();
        if self.eat(close) {
            return Ok(items);
        }
        loop {
            items.push(self.value()?);
            if self.eat(close) {
                return Ok(items);
            }
            self.expect(b',')?;
        }
    }

    fn value_seq_until_bag(&mut self) -> Result<Vec<Value>> {
        // A bag closes with `|}`.
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'|') {
            self.bump();
            self.expect(b'}')?;
            return Ok(items);
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'|') => {
                    self.bump();
                    self.expect(b'}')?;
                    return Ok(items);
                }
                _ => return Err(self.error("expected ',' or '|}' in bag")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error(&format!("bad float {text}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.error(&format!("bad integer {text}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let e = parse_expr(src).unwrap_or_else(|err| panic!("{src}: {err}"));
        assert_eq!(e.to_string(), src, "round-trip failed");
    }

    #[test]
    fn parses_papers_example() {
        let e = parse_expr("BAG.select(LIST.projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)").unwrap();
        let expect = Expr::bag_select(
            Expr::projecttobag(Expr::constant(Value::int_list([1, 2, 3, 4, 4, 5]))),
            Value::Int(2),
            Value::Int(4),
        );
        assert_eq!(e, expect);
    }

    #[test]
    fn roundtrips_display_forms() {
        roundtrip("$x");
        roundtrip("LIST.select($l, 2, 4)");
        roundtrip("BAG.select(LIST.projecttobag($l), 2, 4)");
        roundtrip("MMRANK.topn(MMRANK.rank($q), 10)");
        roundtrip("[1, 2, 3]");
        roundtrip("{1, 2}");
        roundtrip("{|1, 1, 2|}");
        roundtrip("(1, false)");
        roundtrip("SET.member({1, 2}, 2)");
    }

    #[test]
    fn parses_literals() {
        assert_eq!(parse_expr("42").unwrap(), Expr::Const(Value::Int(42)));
        assert_eq!(parse_expr("-7").unwrap(), Expr::Const(Value::Int(-7)));
        assert_eq!(parse_expr("2.5").unwrap(), Expr::Const(Value::Float(2.5)));
        assert_eq!(parse_expr("true").unwrap(), Expr::Const(Value::Bool(true)));
        assert_eq!(
            parse_expr("\"hi\\n\"").unwrap(),
            Expr::Const(Value::Str("hi\n".into()))
        );
        assert_eq!(parse_expr("[]").unwrap(), Expr::Const(Value::List(vec![])));
        assert_eq!(parse_expr("{||}").unwrap(), Expr::Const(Value::bag(vec![])));
    }

    #[test]
    fn bag_literal_canonicalizes() {
        let e = parse_expr("{|3, 1, 2|}").unwrap();
        assert_eq!(
            e,
            Expr::Const(Value::bag(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))
        );
    }

    #[test]
    fn nested_collections() {
        let e = parse_expr("[[1, 2], [3]]").unwrap();
        assert_eq!(
            e,
            Expr::Const(Value::List(vec![
                Value::int_list([1, 2]),
                Value::int_list([3]),
            ]))
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("LIST.").is_err());
        assert!(parse_expr("FOO.bar(1)").is_err());
        assert!(parse_expr("LIST.select(1, 2").is_err());
        assert!(parse_expr("[1, 2] trailing").is_err());
        assert!(parse_expr("{|1, 2}").is_err());
        assert!(parse_expr("\"unterminated").is_err());
        assert!(parse_expr("truthy").is_err());
    }

    #[test]
    fn parsed_expressions_execute() {
        use crate::exec::{evaluate, Env};
        use crate::ext::{ExecContext, Registry};
        let e = parse_expr("BAG.count(LIST.projecttobag([4, 5, 6]))").unwrap();
        let v = evaluate(
            &e,
            &Env::new(),
            &Registry::standard(),
            &mut ExecContext::new(),
        )
        .unwrap();
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn whitespace_is_insignificant() {
        let a = parse_expr("LIST.select( $l , 1 , 2 )").unwrap();
        let b = parse_expr("LIST.select($l,1,2)").unwrap();
        assert_eq!(a, b);
    }
}
