//! The cost-driven physical retrieval planner (the paper's Step 3, made
//! executable).
//!
//! Before this layer, the four retrieval paths — MaxScore-pruned DAAT, the
//! exhaustive cursor merge, the set-at-a-time engine, and the fragmented
//! scan strategies — were chosen *by hand* in each experiment. The planner
//! makes strategy selection a first-class, cost-driven decision, in the
//! Cascades spirit of separating the logical operator (`rank the
//! collection for these terms, keep N`) from its physical alternatives
//! ([`PhysicalPlan`]):
//!
//! 1. [`QueryProfile::build`] reads the catalog only — per-term document
//!    frequencies, fragment residency and volumes, index availability, N —
//!    exactly the information available "early in the query plan",
//! 2. [`Planner::plan`] prices every alternative with the session's
//!    [`CostWeights`] and returns a [`PlanDecision`]: the chosen operator
//!    next to every rejected alternative and its estimate (EXPLAIN prints
//!    this verbatim),
//! 3. [`Planner::observe`] closes the loop: measured
//!    [`ExecReport`] counters are fed back into the weights through a
//!    [`LearnedDistribution`] (the paper's "learned by the system by means
//!    of profiling"), so the pruned-DAAT volume prediction tracks the
//!    collection actually being served.

use moa_ir::{
    ExecReport, FragmentedIndex, PhysicalPlan, RankingModel, Strategy, SwitchDecision, SwitchPolicy,
};

use crate::cost::learning::LearnedDistribution;
use crate::cost::{CostModel, IrCostInfo};
use crate::error::Result;

/// The per-query catalog profile plans are priced against: the df profile
/// of the query terms, the fragment volume fractions, N, and collection
/// statistics.
#[derive(Debug, Clone)]
#[must_use]
pub struct QueryProfile {
    /// Resident posting-run length per query position (duplicated terms
    /// appear once per occurrence — the cursor and accumulator paths scan
    /// a duplicated term's run once per occurrence). Equals the document
    /// frequency on an index built from a whole collection; on a
    /// document-partition shard it is the *shard-local* run, so a
    /// per-shard planner prices the work actually resident on its shard
    /// rather than the collection-wide catalog figure.
    pub dfs: Vec<f64>,
    /// Total query posting volume (Σ dfs).
    pub volume: f64,
    /// The rarest query term's run length (0 for an empty query).
    pub df_min: f64,
    /// Distinct query terms resident in fragment A. The fragmented
    /// gather paths dedup the query's term set, so indexed-access
    /// estimates are sized per *distinct* term, not per position.
    pub a_terms: usize,
    /// Distinct query terms resident in fragment B.
    pub b_terms: usize,
    /// Σ df over distinct A-resident terms.
    pub a_query_postings: f64,
    /// Σ df over distinct B-resident terms.
    pub b_query_postings: f64,
    /// The requested ranking depth.
    pub n: f64,
    /// Collection- and fragment-level catalog figures.
    pub ir: IrCostInfo,
}

impl QueryProfile {
    /// Read the profile from the catalog (no postings are touched).
    pub fn build(terms: &[u32], n: usize, frag: &FragmentedIndex) -> Result<QueryProfile> {
        let index = frag.index();
        let mut dfs = Vec::with_capacity(terms.len());
        let mut volume = 0.0f64;
        let mut df_min = f64::INFINITY;
        let mut a_terms = 0usize;
        let mut b_terms = 0usize;
        let mut a_query_postings = 0.0f64;
        let mut b_query_postings = 0.0f64;
        let mut seen: Vec<u32> = Vec::with_capacity(terms.len());
        for &t in terms {
            // Work is proportional to the postings physically present
            // (`run_len`), not the catalog df — the two only differ on
            // document-partition shards, where df stays collection-wide.
            let df = index.run_len(t)? as f64;
            dfs.push(df);
            volume += df;
            df_min = df_min.min(df);
            if seen.contains(&t) {
                continue; // fragment gathers visit each distinct term once
            }
            seen.push(t);
            if frag.term_in_a(t) {
                a_terms += 1;
                a_query_postings += df;
            } else if df > 0.0 {
                b_terms += 1;
                b_query_postings += df;
            }
        }
        if !df_min.is_finite() {
            df_min = 0.0;
        }
        Ok(QueryProfile {
            dfs,
            volume,
            df_min,
            a_terms,
            b_terms,
            a_query_postings,
            b_query_postings,
            n: n as f64,
            ir: IrCostInfo::from_catalog(frag, volume),
        })
    }
}

/// One priced physical alternative.
#[derive(Debug, Clone)]
#[must_use]
pub struct PlanAlternative {
    /// The physical operator.
    pub plan: PhysicalPlan,
    /// Predicted `postings_scanned` (the unified work counter).
    pub est_postings: f64,
    /// Weighted abstract cost (`rank_posting × est_postings +
    /// materialize × output`, plus `decode_posting × est_postings` on the
    /// cursor/accumulator paths that unpack the block-compressed
    /// storage).
    pub cost: f64,
    /// Whether this plan's top-N is guaranteed bit-identical to the
    /// naive full-scan oracle.
    pub exact: bool,
    /// Whether the plan can run as priced (indexed variants need their
    /// non-dense index built).
    pub feasible: bool,
    /// One-line pricing / rejection rationale.
    pub reason: String,
}

/// The planner's verdict: the chosen operator next to every rejected
/// alternative with its estimate.
#[derive(Debug, Clone)]
#[must_use]
pub struct PlanDecision {
    /// The winning physical operator.
    pub chosen: PhysicalPlan,
    /// Every enumerated alternative, cheapest first.
    pub alternatives: Vec<PlanAlternative>,
    /// The early quality check's verdict (computed at plan time from
    /// catalog statistics only).
    pub switch: SwitchDecision,
    /// The catalog profile the pricing used.
    pub profile: QueryProfile,
}

impl PlanDecision {
    /// The chosen plan's priced alternative entry.
    pub fn chosen_alternative(&self) -> &PlanAlternative {
        self.alternatives
            .iter()
            .find(|a| a.plan == self.chosen)
            .expect("chosen plan is always enumerated")
    }

    /// Render the decision as EXPLAIN text: chosen operator first, then
    /// every rejected alternative with its cost estimate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for alt in &self.alternatives {
            let marker = if alt.plan == self.chosen { "->" } else { "  " };
            let exact = if alt.exact { "exact" } else { "approx" };
            let feas = if alt.feasible { "" } else { " (infeasible)" };
            out.push_str(&format!(
                "{marker} {:<20} est. cost {:>10.0}, postings {:>10.0}, {exact}{feas}  [{}]\n",
                alt.plan.name(),
                alt.cost,
                alt.est_postings,
                alt.reason
            ));
        }
        out
    }
}

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// When set (the default), only plans whose top-N is guaranteed exact
    /// may be chosen; unsafe/approximate plans are still priced and shown.
    pub require_exact: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            require_exact: true,
        }
    }
}

/// The cost-driven physical retrieval planner.
#[derive(Debug, Clone)]
pub struct Planner {
    /// The cost model whose weights price the alternatives (and receive
    /// the calibration feedback).
    pub model: CostModel,
    /// Configuration.
    pub config: PlannerConfig,
    /// Observed pruned-DAAT scan fractions (profiling, per the paper's
    /// learned-distribution proposal).
    observed_prune: LearnedDistribution,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new(CostModel::default(), PlannerConfig::default())
    }
}

impl Planner {
    /// Create a planner with the given cost model and configuration.
    pub fn new(model: CostModel, config: PlannerConfig) -> Planner {
        Planner {
            model,
            config,
            observed_prune: LearnedDistribution::new(8, 16),
        }
    }

    /// Enumerate and price every physical alternative for one query,
    /// returning the cost-chosen winner next to the rejected plans.
    pub fn plan(
        &self,
        terms: &[u32],
        n: usize,
        frag: &FragmentedIndex,
        model: RankingModel,
        policy: SwitchPolicy,
    ) -> Result<PlanDecision> {
        let profile = QueryProfile::build(terms, n, frag)?;
        let switch = policy.decide(terms, frag, model)?;
        let w = self.model.weights;
        let out_rows = profile.n.min(profile.ir.num_docs);
        let price = |est: f64| w.rank_posting * est + w.materialize * out_rows;

        let mut alternatives: Vec<PlanAlternative> = Vec::with_capacity(PhysicalPlan::ALL.len());
        for plan in PhysicalPlan::ALL {
            let ir = profile.ir;
            let (est, exact, feasible, reason) = match plan {
                PhysicalPlan::PrunedDaat => {
                    if profile.n >= ir.num_docs {
                        (
                            profile.volume,
                            true,
                            true,
                            "N admits every document: bounds cannot prune".to_owned(),
                        )
                    } else {
                        let est = profile.df_min
                            + w.daat_prune * (profile.volume - profile.df_min).max(0.0);
                        (
                            est,
                            true,
                            true,
                            format!("df_min + {:.2} x rest (calibrated)", w.daat_prune),
                        )
                    }
                }
                PhysicalPlan::ExhaustiveDaat => (
                    profile.volume,
                    true,
                    true,
                    "every query posting merged".to_owned(),
                ),
                PhysicalPlan::SetAtATime => (
                    profile.volume,
                    true,
                    true,
                    "every query posting accumulated".to_owned(),
                ),
                PhysicalPlan::Fragmented(Strategy::FullScan) => (
                    ir.volume_a + ir.volume_b,
                    true,
                    true,
                    "full table scan".to_owned(),
                ),
                PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index }) => {
                    let (est, feasible, how) = if use_a_index {
                        (
                            profile.a_query_postings + profile.a_terms as f64 * ir.index_block,
                            ir.a_indexed,
                            "A runs via non-dense index",
                        )
                    } else {
                        (ir.volume_a, true, "fragment A scanned")
                    };
                    (
                        est,
                        false,
                        feasible,
                        format!("{how}; drops B-resident score mass"),
                    )
                }
                PhysicalPlan::Fragmented(Strategy::Switch { use_b_index }) => {
                    let b_cost = if !switch.use_b {
                        0.0
                    } else if use_b_index {
                        profile.b_query_postings + profile.b_terms as f64 * ir.index_block
                    } else {
                        ir.volume_b
                    };
                    let feasible = !use_b_index || ir.b_indexed || !switch.use_b;
                    let how = if switch.use_b {
                        "check demands B: complete scores"
                    } else {
                        "check waives B: quality-bounded, not exact"
                    };
                    (ir.volume_a + b_cost, switch.use_b, feasible, how.to_owned())
                }
            };
            // The cursor/accumulator paths run on the block-compressed
            // storage and pay a per-posting unpack; the fragmented table
            // paths scan flat arrays and do not.
            let decodes = matches!(
                plan,
                PhysicalPlan::PrunedDaat | PhysicalPlan::ExhaustiveDaat | PhysicalPlan::SetAtATime
            );
            let decode_cost = if decodes { w.decode_posting * est } else { 0.0 };
            alternatives.push(PlanAlternative {
                plan,
                est_postings: est,
                cost: price(est) + decode_cost,
                exact,
                feasible,
                reason,
            });
        }

        // Choose the cheapest eligible plan; PhysicalPlan::ALL's order
        // breaks exact cost ties (stable sort), and PrunedDaat is always
        // eligible so a winner exists.
        let eligible = |a: &PlanAlternative| a.feasible && (a.exact || !self.config.require_exact);
        let chosen = alternatives
            .iter()
            .filter(|a| eligible(a))
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
            .map(|a| a.plan)
            .expect("PrunedDaat is always eligible");
        alternatives.sort_by(|a, b| a.cost.total_cmp(&b.cost));

        Ok(PlanDecision {
            chosen,
            alternatives,
            switch,
            profile,
        })
    }

    /// Feed one measured execution back into the cost weights: the pruned
    /// DAAT kernel's observed scan fraction refits
    /// [`crate::cost::CostWeights::daat_prune`] through the learned
    /// distribution (median of the observed fractions) — profiling-based
    /// calibration exactly as the paper proposes for unknown
    /// distributions.
    pub fn observe(&mut self, plan: PhysicalPlan, profile: &QueryProfile, report: &ExecReport) {
        if plan != PhysicalPlan::PrunedDaat {
            return;
        }
        let rest = profile.volume - profile.df_min;
        if rest <= 0.0 || profile.n >= profile.ir.num_docs {
            return;
        }
        let fraction = ((report.postings_scanned as f64 - profile.df_min) / rest).clamp(0.0, 1.0);
        self.observed_prune.observe(fraction);
        // Median of the learned distribution (sized against the fitted
        // histogram's own total, so it stays a median as observations
        // keep arriving between refits).
        if let Some(m) = self.observed_prune.median() {
            self.model.weights.daat_prune = m.clamp(0.01, 1.0);
        }
    }

    /// Number of calibration observations absorbed so far.
    pub fn observations(&self) -> usize {
        self.observed_prune.observations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_corpus::{generate_queries, Collection, CollectionConfig, QueryConfig};
    use moa_ir::{EngineSet, FragmentSpec, InvertedIndex};
    use std::sync::Arc;

    fn fixture(index_fragments: bool) -> (Collection, Arc<FragmentedIndex>) {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        let mut frag = FragmentedIndex::build(idx, FragmentSpec::TermFraction(0.9)).unwrap();
        if index_fragments {
            frag.fragment_a_mut().build_sparse_index(64).unwrap();
            frag.fragment_b_mut().build_sparse_index(64).unwrap();
        }
        (c, Arc::new(frag))
    }

    #[test]
    fn profile_reads_catalog_only() {
        let (_, frag) = fixture(true);
        let terms = frag.index().terms_by_df_asc();
        let q = vec![terms[0], terms[terms.len() - 1], terms[0]];
        let p = QueryProfile::build(&q, 10, &frag).unwrap();
        assert_eq!(p.dfs.len(), 3);
        assert_eq!(p.volume, p.dfs.iter().sum::<f64>());
        assert_eq!(
            p.df_min,
            p.dfs.iter().copied().fold(f64::INFINITY, f64::min)
        );
        // q holds 3 positions but only 2 distinct terms: the fragment
        // residency counters are distinct-term-based (the gather paths
        // dedup), so a duplicated term is counted once.
        assert_eq!(p.a_terms + p.b_terms, 2);
        let single = QueryProfile::build(&q[..2], 10, &frag).unwrap();
        assert_eq!(p.a_query_postings, single.a_query_postings);
        assert_eq!(p.b_query_postings, single.b_query_postings);
        assert!(p.ir.a_indexed && p.ir.b_indexed);
        assert_eq!(p.ir.index_block, 64.0);
        assert!(QueryProfile::build(&[u32::MAX], 10, &frag).is_err());
    }

    #[test]
    fn exact_mode_never_chooses_an_unsafe_plan() {
        let (c, frag) = fixture(true);
        let planner = Planner::default();
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        for q in queries.iter().take(12) {
            for n in [1usize, 10, c.num_docs()] {
                let d = planner
                    .plan(
                        &q.terms,
                        n,
                        &frag,
                        RankingModel::default(),
                        SwitchPolicy::default(),
                    )
                    .unwrap();
                let chosen = d.chosen_alternative();
                assert!(
                    chosen.exact,
                    "{:?} chose approximate {}",
                    q.terms,
                    chosen.plan.name()
                );
                assert!(chosen.feasible);
                assert_eq!(d.alternatives.len(), PhysicalPlan::ALL.len());
                // Alternatives are sorted cheapest-first.
                for w in d.alternatives.windows(2) {
                    assert!(w[0].cost <= w[1].cost);
                }
            }
        }
    }

    #[test]
    fn quality_mode_may_choose_the_unsafe_fragment_a_path() {
        let (_, frag) = fixture(true);
        let planner = Planner::new(
            CostModel::default(),
            PlannerConfig {
                require_exact: false,
            },
        );
        // An all-A rare-term query: A-only via the index is the cheapest
        // plan by far, and with exactness waived it may win.
        let terms = frag.index().terms_by_df_asc();
        let q = vec![terms[0], terms[1]];
        let d = planner
            .plan(
                &q,
                10,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        assert!(matches!(
            d.chosen,
            PhysicalPlan::Fragmented(Strategy::AOnly { .. })
                | PhysicalPlan::Fragmented(Strategy::Switch { .. })
                | PhysicalPlan::PrunedDaat
        ));
        // The unsafe plans must at least be priced.
        assert!(d
            .alternatives
            .iter()
            .any(|a| !a.exact && a.cost.is_finite()));
    }

    #[test]
    fn unindexed_fragments_make_indexed_plans_infeasible() {
        let (c, frag) = fixture(false);
        let planner = Planner::default();
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        let d = planner
            .plan(
                &queries[0].terms,
                10,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        for alt in &d.alternatives {
            if alt.plan == PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index: true }) {
                assert!(!alt.feasible);
            }
        }
    }

    #[test]
    fn n_beyond_collection_disables_the_pruning_discount() {
        let (c, frag) = fixture(true);
        let planner = Planner::default();
        let terms = frag.index().terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 2]];
        let small = planner
            .plan(
                &q,
                5,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        let all = planner
            .plan(
                &q,
                c.num_docs(),
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        let est = |d: &PlanDecision| {
            d.alternatives
                .iter()
                .find(|a| a.plan == PhysicalPlan::PrunedDaat)
                .unwrap()
                .est_postings
        };
        assert!(est(&small) < est(&all));
        assert_eq!(est(&all), all.profile.volume);
    }

    #[test]
    fn calibration_moves_the_prune_weight_toward_measurements() {
        let (c, frag) = fixture(true);
        let mut planner = Planner::default();
        let mut engines = EngineSet::new(
            Arc::clone(&frag),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        let before = planner.model.weights.daat_prune;
        for q in queries.iter().take(20) {
            let d = planner
                .plan(
                    &q.terms,
                    10,
                    &frag,
                    RankingModel::default(),
                    SwitchPolicy::default(),
                )
                .unwrap();
            let rep = engines
                .execute(PhysicalPlan::PrunedDaat, &q.terms, 10)
                .unwrap();
            planner.observe(PhysicalPlan::PrunedDaat, &d.profile, &rep);
        }
        assert!(planner.observations() > 0);
        let after = planner.model.weights.daat_prune;
        assert!(after > 0.0 && after <= 1.0);
        // With 20 observations the learned median has replaced the
        // default prior (equality would be a one-in-a-million fluke).
        assert_ne!(before, after);
    }

    #[test]
    fn render_marks_the_chosen_operator() {
        let (c, frag) = fixture(true);
        let planner = Planner::default();
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        let d = planner
            .plan(
                &queries[0].terms,
                10,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        let text = d.render();
        assert!(text.contains("->"));
        assert!(text.contains(d.chosen.name()));
        for plan in PhysicalPlan::ALL {
            assert!(text.contains(plan.name()), "missing {}", plan.name());
        }
    }
}
