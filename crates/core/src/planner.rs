//! The cost-driven physical retrieval planner (the paper's Step 3, made
//! executable).
//!
//! Before this layer, the four retrieval paths — MaxScore-pruned DAAT, the
//! exhaustive cursor merge, the set-at-a-time engine, and the fragmented
//! scan strategies — were chosen *by hand* in each experiment. The planner
//! makes strategy selection a first-class, cost-driven decision, in the
//! Cascades spirit of separating the logical operator (`rank the
//! collection for these terms, keep N`) from its physical alternatives
//! ([`PhysicalPlan`]):
//!
//! 1. [`QueryProfile::build`] reads the catalog only — per-term document
//!    frequencies, fragment residency and volumes, index availability, N —
//!    exactly the information available "early in the query plan",
//! 2. [`Planner::plan`] prices every alternative with the session's
//!    [`CostWeights`] and returns a [`PlanDecision`]: the chosen operator
//!    next to every rejected alternative and its estimate (EXPLAIN prints
//!    this verbatim),
//! 3. [`Planner::observe`] closes the loop: measured
//!    [`ExecReport`] counters are fed back into the weights through a
//!    [`LearnedDistribution`] (the paper's "learned by the system by means
//!    of profiling"), so the pruned-DAAT volume prediction tracks the
//!    collection actually being served.

use std::collections::{HashMap, VecDeque};

use moa_ir::{
    ExecReport, FragmentedIndex, PhysicalPlan, RankingModel, Strategy, SwitchDecision, SwitchPolicy,
};

use crate::cost::learning::LearnedDistribution;
use crate::cost::{CostModel, IrCostInfo};
use crate::error::Result;

/// Plan-memo capacity: distinct df-band signatures retained. Signatures
/// are a handful of bytes and query classes are few (bands × widths), so
/// a small FIFO-bounded map holds every class a realistic workload
/// produces; overflow evicts the oldest signature.
pub const PLAN_MEMO_CAP: usize = 512;

/// How far [`Planner::observe`] may move the calibrated
/// [`crate::cost::CostWeights::daat_prune`] weight before every memoized
/// decision is flash-invalidated (the memo was priced under the old
/// weight; beyond this drift its costs are stale enough to re-walk the
/// alternatives).
pub const PLAN_MEMO_DRIFT_TOLERANCE: f64 = 0.05;

/// The per-query catalog profile plans are priced against: the df profile
/// of the query terms, the fragment volume fractions, N, and collection
/// statistics.
#[derive(Debug, Clone)]
#[must_use]
pub struct QueryProfile {
    /// Resident posting-run length per query position (duplicated terms
    /// appear once per occurrence — the cursor and accumulator paths scan
    /// a duplicated term's run once per occurrence). Equals the document
    /// frequency on an index built from a whole collection; on a
    /// document-partition shard it is the *shard-local* run, so a
    /// per-shard planner prices the work actually resident on its shard
    /// rather than the collection-wide catalog figure.
    pub dfs: Vec<f64>,
    /// Total query posting volume (Σ dfs).
    pub volume: f64,
    /// The rarest query term's run length (0 for an empty query).
    pub df_min: f64,
    /// Distinct query terms resident in fragment A. The fragmented
    /// gather paths dedup the query's term set, so indexed-access
    /// estimates are sized per *distinct* term, not per position.
    pub a_terms: usize,
    /// Distinct query terms resident in fragment B.
    pub b_terms: usize,
    /// Σ df over distinct A-resident terms.
    pub a_query_postings: f64,
    /// Σ df over distinct B-resident terms.
    pub b_query_postings: f64,
    /// The requested ranking depth.
    pub n: f64,
    /// Collection- and fragment-level catalog figures.
    pub ir: IrCostInfo,
}

impl QueryProfile {
    /// Read the profile from the catalog (no postings are touched).
    pub fn build(terms: &[u32], n: usize, frag: &FragmentedIndex) -> Result<QueryProfile> {
        let index = frag.index();
        let mut dfs = Vec::with_capacity(terms.len());
        let mut volume = 0.0f64;
        let mut df_min = f64::INFINITY;
        let mut a_terms = 0usize;
        let mut b_terms = 0usize;
        let mut a_query_postings = 0.0f64;
        let mut b_query_postings = 0.0f64;
        let mut seen: Vec<u32> = Vec::with_capacity(terms.len());
        for &t in terms {
            // Work is proportional to the postings physically present
            // (`run_len`), not the catalog df — the two only differ on
            // document-partition shards, where df stays collection-wide.
            let df = index.run_len(t)? as f64;
            dfs.push(df);
            volume += df;
            df_min = df_min.min(df);
            if seen.contains(&t) {
                continue; // fragment gathers visit each distinct term once
            }
            seen.push(t);
            if frag.term_in_a(t) {
                a_terms += 1;
                a_query_postings += df;
            } else if df > 0.0 {
                b_terms += 1;
                b_query_postings += df;
            }
        }
        if !df_min.is_finite() {
            df_min = 0.0;
        }
        Ok(QueryProfile {
            dfs,
            volume,
            df_min,
            a_terms,
            b_terms,
            a_query_postings,
            b_query_postings,
            n: n as f64,
            ir: IrCostInfo::from_catalog(frag, volume),
        })
    }
}

/// One priced physical alternative.
#[derive(Debug, Clone)]
#[must_use]
pub struct PlanAlternative {
    /// The physical operator.
    pub plan: PhysicalPlan,
    /// Predicted `postings_scanned` (the unified work counter).
    pub est_postings: f64,
    /// Weighted abstract cost (`rank_posting × est_postings +
    /// materialize × output`, plus `decode_posting × est_postings` on the
    /// cursor/accumulator paths that unpack the block-compressed
    /// storage).
    pub cost: f64,
    /// Whether this plan's top-N is guaranteed bit-identical to the
    /// naive full-scan oracle.
    pub exact: bool,
    /// Whether the plan can run as priced (indexed variants need their
    /// non-dense index built).
    pub feasible: bool,
    /// One-line pricing / rejection rationale.
    pub reason: String,
}

/// The planner's verdict: the chosen operator next to every rejected
/// alternative with its estimate.
#[derive(Debug, Clone)]
#[must_use]
pub struct PlanDecision {
    /// The winning physical operator.
    pub chosen: PhysicalPlan,
    /// Every enumerated alternative, cheapest first.
    pub alternatives: Vec<PlanAlternative>,
    /// The early quality check's verdict (computed at plan time from
    /// catalog statistics only).
    pub switch: SwitchDecision,
    /// The catalog profile the pricing used.
    pub profile: QueryProfile,
}

impl PlanDecision {
    /// The chosen plan's priced alternative entry.
    pub fn chosen_alternative(&self) -> &PlanAlternative {
        self.alternatives
            .iter()
            .find(|a| a.plan == self.chosen)
            .expect("chosen plan is always enumerated")
    }

    /// Render the decision as EXPLAIN text: chosen operator first, then
    /// every rejected alternative with its cost estimate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for alt in &self.alternatives {
            let marker = if alt.plan == self.chosen { "->" } else { "  " };
            let exact = if alt.exact { "exact" } else { "approx" };
            let feas = if alt.feasible { "" } else { " (infeasible)" };
            out.push_str(&format!(
                "{marker} {:<20} est. cost {:>10.0}, postings {:>10.0}, {exact}{feas}  [{}]\n",
                alt.plan.name(),
                alt.cost,
                alt.est_postings,
                alt.reason
            ));
        }
        out
    }
}

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// When set (the default), only plans whose top-N is guaranteed exact
    /// may be chosen; unsafe/approximate plans are still priced and shown.
    pub require_exact: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            require_exact: true,
        }
    }
}

/// One memoized verdict: the winner and its priced entry, without the
/// seven rejected alternatives (re-synthesized on demand for EXPLAIN).
#[derive(Debug, Clone, Copy)]
struct MemoEntry {
    chosen: PhysicalPlan,
    est_postings: f64,
    cost: f64,
    exact: bool,
    switch: SwitchDecision,
}

/// Memo hit/miss/invalidation counters and residency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Decisions answered from the memo.
    pub hits: u64,
    /// Signatures priced fresh (and inserted).
    pub misses: u64,
    /// Times calibration drift cleared the whole memo.
    pub invalidations: u64,
    /// Signatures currently memoized.
    pub entries: usize,
}

/// The bounded plan memo: df-band-quantized signature → priced verdict.
/// See [`Planner::plan_memoized`].
#[derive(Debug, Clone)]
struct PlanMemo {
    entries: HashMap<Box<[u8]>, MemoEntry>,
    /// Insertion order for FIFO bounding at [`PLAN_MEMO_CAP`].
    order: VecDeque<Box<[u8]>>,
    /// The `daat_prune` weight the resident entries were priced under.
    stamp: f64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    /// Reused signature buffer: a memo *hit* never allocates for its key.
    scratch: Vec<u8>,
}

impl PlanMemo {
    fn new(stamp: f64) -> PlanMemo {
        PlanMemo {
            entries: HashMap::new(),
            order: VecDeque::new(),
            stamp,
            hits: 0,
            misses: 0,
            invalidations: 0,
            scratch: Vec::new(),
        }
    }
}

/// Quantize a catalog figure to its power-of-two band: profiles whose
/// per-position dfs land in the same bands share one memo entry.
fn df_band(v: f64) -> u8 {
    if v < 1.0 {
        0
    } else {
        (v.log2().floor() as i64 + 1).clamp(1, 0x3f) as u8
    }
}

/// The cost-driven physical retrieval planner.
#[derive(Debug, Clone)]
pub struct Planner {
    /// The cost model whose weights price the alternatives (and receive
    /// the calibration feedback).
    pub model: CostModel,
    /// Configuration.
    pub config: PlannerConfig,
    /// Observed pruned-DAAT scan fractions (profiling, per the paper's
    /// learned-distribution proposal).
    observed_prune: LearnedDistribution,
    /// Memoized decisions keyed by df-band signature.
    memo: PlanMemo,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new(CostModel::default(), PlannerConfig::default())
    }
}

impl Planner {
    /// Create a planner with the given cost model and configuration.
    pub fn new(model: CostModel, config: PlannerConfig) -> Planner {
        let stamp = model.weights.daat_prune;
        Planner {
            model,
            config,
            observed_prune: LearnedDistribution::new(8, 16),
            memo: PlanMemo::new(stamp),
        }
    }

    /// Enumerate and price every physical alternative for one query,
    /// returning the cost-chosen winner next to the rejected plans.
    pub fn plan(
        &self,
        terms: &[u32],
        n: usize,
        frag: &FragmentedIndex,
        model: RankingModel,
        policy: SwitchPolicy,
    ) -> Result<PlanDecision> {
        let profile = QueryProfile::build(terms, n, frag)?;
        let switch = policy.decide(terms, frag, model)?;
        Ok(self.price_profile(profile, switch))
    }

    /// Price every alternative against an already-built profile (the
    /// shared tail of [`Planner::plan`] and a
    /// [`Planner::plan_memoized`] miss).
    fn price_profile(&self, profile: QueryProfile, switch: SwitchDecision) -> PlanDecision {
        let w = self.model.weights;
        let out_rows = profile.n.min(profile.ir.num_docs);
        let price = |est: f64| w.rank_posting * est + w.materialize * out_rows;

        let mut alternatives: Vec<PlanAlternative> = Vec::with_capacity(PhysicalPlan::ALL.len());
        for plan in PhysicalPlan::ALL {
            let ir = profile.ir;
            let (est, exact, feasible, reason) = match plan {
                PhysicalPlan::PrunedDaat => {
                    if profile.n >= ir.num_docs {
                        (
                            profile.volume,
                            true,
                            true,
                            "N admits every document: bounds cannot prune".to_owned(),
                        )
                    } else {
                        let est = profile.df_min
                            + w.daat_prune * (profile.volume - profile.df_min).max(0.0);
                        (
                            est,
                            true,
                            true,
                            format!("df_min + {:.2} x rest (calibrated)", w.daat_prune),
                        )
                    }
                }
                PhysicalPlan::ExhaustiveDaat => (
                    profile.volume,
                    true,
                    true,
                    "every query posting merged".to_owned(),
                ),
                PhysicalPlan::SetAtATime => (
                    profile.volume,
                    true,
                    true,
                    "every query posting accumulated".to_owned(),
                ),
                PhysicalPlan::Fragmented(Strategy::FullScan) => (
                    ir.volume_a + ir.volume_b,
                    true,
                    true,
                    "full table scan".to_owned(),
                ),
                PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index }) => {
                    let (est, feasible, how) = if use_a_index {
                        (
                            profile.a_query_postings + profile.a_terms as f64 * ir.index_block,
                            ir.a_indexed,
                            "A runs via non-dense index",
                        )
                    } else {
                        (ir.volume_a, true, "fragment A scanned")
                    };
                    (
                        est,
                        false,
                        feasible,
                        format!("{how}; drops B-resident score mass"),
                    )
                }
                PhysicalPlan::Fragmented(Strategy::Switch { use_b_index }) => {
                    let b_cost = if !switch.use_b {
                        0.0
                    } else if use_b_index {
                        profile.b_query_postings + profile.b_terms as f64 * ir.index_block
                    } else {
                        ir.volume_b
                    };
                    let feasible = !use_b_index || ir.b_indexed || !switch.use_b;
                    let how = if switch.use_b {
                        "check demands B: complete scores"
                    } else {
                        "check waives B: quality-bounded, not exact"
                    };
                    (ir.volume_a + b_cost, switch.use_b, feasible, how.to_owned())
                }
            };
            // The cursor/accumulator paths run on the block-compressed
            // storage and pay a per-posting unpack; the fragmented table
            // paths scan flat arrays and do not.
            let decodes = matches!(
                plan,
                PhysicalPlan::PrunedDaat | PhysicalPlan::ExhaustiveDaat | PhysicalPlan::SetAtATime
            );
            let decode_cost = if decodes { w.decode_posting * est } else { 0.0 };
            alternatives.push(PlanAlternative {
                plan,
                est_postings: est,
                cost: price(est) + decode_cost,
                exact,
                feasible,
                reason,
            });
        }

        // Choose the cheapest eligible plan; PhysicalPlan::ALL's order
        // breaks exact cost ties (stable sort), and PrunedDaat is always
        // eligible so a winner exists.
        let eligible = |a: &PlanAlternative| a.feasible && (a.exact || !self.config.require_exact);
        let chosen = alternatives
            .iter()
            .filter(|a| eligible(a))
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
            .map(|a| a.plan)
            .expect("PrunedDaat is always eligible");
        alternatives.sort_by(|a, b| a.cost.total_cmp(&b.cost));

        PlanDecision {
            chosen,
            alternatives,
            switch,
            profile,
        }
    }

    /// [`Planner::plan`] through the bounded plan memo: the profile is
    /// still read fresh from the catalog (cheap, and
    /// [`Planner::observe`] needs the real figures), but pricing is
    /// answered from the memo when a df-band-quantized signature of the
    /// query — per-position df band plus fragment-A residency, and the
    /// banded ranking depth — has been priced before. Returns the
    /// decision and whether it was a memo hit. A hit's
    /// [`PlanDecision::alternatives`] holds only the chosen entry
    /// (reason `memo: HIT`); the rejected alternatives were not
    /// re-walked — that is the point.
    ///
    /// Answer-preserving by construction: the memo stores only *which*
    /// exact operator to run, never result state, so a hit executes the
    /// same bit-identical retrieval a fresh pricing would have picked
    /// for that query class.
    pub fn plan_memoized(
        &mut self,
        terms: &[u32],
        n: usize,
        frag: &FragmentedIndex,
        model: RankingModel,
        policy: SwitchPolicy,
    ) -> Result<(PlanDecision, bool)> {
        let profile = QueryProfile::build(terms, n, frag)?;
        // Signature: banded N (with the "N admits every document" pricing
        // cliff folded in explicitly, so banding can never blur across
        // it), then one byte per query position: df band | A-residency.
        self.memo.scratch.clear();
        let mut n_byte = df_band(profile.n);
        if profile.n >= profile.ir.num_docs {
            n_byte |= 0x80;
        }
        self.memo.scratch.push(n_byte);
        for (i, &t) in terms.iter().enumerate() {
            let mut b = df_band(profile.dfs[i]);
            if frag.term_in_a(t) {
                b |= 0x40;
            }
            self.memo.scratch.push(b);
        }
        if let Some(e) = self.memo.entries.get(self.memo.scratch.as_slice()) {
            self.memo.hits += 1;
            let alt = PlanAlternative {
                plan: e.chosen,
                est_postings: e.est_postings,
                cost: e.cost,
                exact: e.exact,
                feasible: true,
                reason: "memo: HIT".to_owned(),
            };
            let decision = PlanDecision {
                chosen: e.chosen,
                alternatives: vec![alt],
                switch: e.switch,
                profile,
            };
            return Ok((decision, true));
        }
        self.memo.misses += 1;
        let switch = policy.decide(terms, frag, model)?;
        let decision = self.price_profile(profile, switch);
        let chosen = decision.chosen_alternative();
        let entry = MemoEntry {
            chosen: decision.chosen,
            est_postings: chosen.est_postings,
            cost: chosen.cost,
            exact: chosen.exact,
            switch: decision.switch,
        };
        if self.memo.entries.len() >= PLAN_MEMO_CAP {
            if let Some(oldest) = self.memo.order.pop_front() {
                self.memo.entries.remove(&oldest);
            }
        }
        let key: Box<[u8]> = self.memo.scratch.as_slice().into();
        self.memo.order.push_back(key.clone());
        self.memo.entries.insert(key, entry);
        Ok((decision, false))
    }

    /// Memo counters and residency.
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            hits: self.memo.hits,
            misses: self.memo.misses,
            invalidations: self.memo.invalidations,
            entries: self.memo.entries.len(),
        }
    }

    /// Feed one measured execution back into the cost weights: the pruned
    /// DAAT kernel's observed scan fraction refits
    /// [`crate::cost::CostWeights::daat_prune`] through the learned
    /// distribution (median of the observed fractions) — profiling-based
    /// calibration exactly as the paper proposes for unknown
    /// distributions.
    pub fn observe(&mut self, plan: PhysicalPlan, profile: &QueryProfile, report: &ExecReport) {
        if plan != PhysicalPlan::PrunedDaat {
            return;
        }
        let rest = profile.volume - profile.df_min;
        if rest <= 0.0 || profile.n >= profile.ir.num_docs {
            return;
        }
        let fraction = ((report.postings_scanned as f64 - profile.df_min) / rest).clamp(0.0, 1.0);
        self.observed_prune.observe(fraction);
        // Median of the learned distribution (sized against the fitted
        // histogram's own total, so it stays a median as observations
        // keep arriving between refits).
        if let Some(m) = self.observed_prune.median() {
            self.model.weights.daat_prune = m.clamp(0.01, 1.0);
        }
        // Memoized decisions were priced under the stamped weight; once
        // calibration has moved it materially, their costs (and possibly
        // their winners) are stale — flash-invalidate and restamp.
        if (self.model.weights.daat_prune - self.memo.stamp).abs() > PLAN_MEMO_DRIFT_TOLERANCE {
            self.memo.entries.clear();
            self.memo.order.clear();
            self.memo.stamp = self.model.weights.daat_prune;
            self.memo.invalidations += 1;
        }
    }

    /// Number of calibration observations absorbed so far.
    pub fn observations(&self) -> usize {
        self.observed_prune.observations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moa_corpus::{generate_queries, Collection, CollectionConfig, QueryConfig};
    use moa_ir::{EngineSet, FragmentSpec, InvertedIndex};
    use std::sync::Arc;

    fn fixture(index_fragments: bool) -> (Collection, Arc<FragmentedIndex>) {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        let mut frag = FragmentedIndex::build(idx, FragmentSpec::TermFraction(0.9)).unwrap();
        if index_fragments {
            frag.fragment_a_mut().build_sparse_index(64).unwrap();
            frag.fragment_b_mut().build_sparse_index(64).unwrap();
        }
        (c, Arc::new(frag))
    }

    #[test]
    fn profile_reads_catalog_only() {
        let (_, frag) = fixture(true);
        let terms = frag.index().terms_by_df_asc();
        let q = vec![terms[0], terms[terms.len() - 1], terms[0]];
        let p = QueryProfile::build(&q, 10, &frag).unwrap();
        assert_eq!(p.dfs.len(), 3);
        assert_eq!(p.volume, p.dfs.iter().sum::<f64>());
        assert_eq!(
            p.df_min,
            p.dfs.iter().copied().fold(f64::INFINITY, f64::min)
        );
        // q holds 3 positions but only 2 distinct terms: the fragment
        // residency counters are distinct-term-based (the gather paths
        // dedup), so a duplicated term is counted once.
        assert_eq!(p.a_terms + p.b_terms, 2);
        let single = QueryProfile::build(&q[..2], 10, &frag).unwrap();
        assert_eq!(p.a_query_postings, single.a_query_postings);
        assert_eq!(p.b_query_postings, single.b_query_postings);
        assert!(p.ir.a_indexed && p.ir.b_indexed);
        assert_eq!(p.ir.index_block, 64.0);
        assert!(QueryProfile::build(&[u32::MAX], 10, &frag).is_err());
    }

    #[test]
    fn exact_mode_never_chooses_an_unsafe_plan() {
        let (c, frag) = fixture(true);
        let planner = Planner::default();
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        for q in queries.iter().take(12) {
            for n in [1usize, 10, c.num_docs()] {
                let d = planner
                    .plan(
                        &q.terms,
                        n,
                        &frag,
                        RankingModel::default(),
                        SwitchPolicy::default(),
                    )
                    .unwrap();
                let chosen = d.chosen_alternative();
                assert!(
                    chosen.exact,
                    "{:?} chose approximate {}",
                    q.terms,
                    chosen.plan.name()
                );
                assert!(chosen.feasible);
                assert_eq!(d.alternatives.len(), PhysicalPlan::ALL.len());
                // Alternatives are sorted cheapest-first.
                for w in d.alternatives.windows(2) {
                    assert!(w[0].cost <= w[1].cost);
                }
            }
        }
    }

    #[test]
    fn quality_mode_may_choose_the_unsafe_fragment_a_path() {
        let (_, frag) = fixture(true);
        let planner = Planner::new(
            CostModel::default(),
            PlannerConfig {
                require_exact: false,
            },
        );
        // An all-A rare-term query: A-only via the index is the cheapest
        // plan by far, and with exactness waived it may win.
        let terms = frag.index().terms_by_df_asc();
        let q = vec![terms[0], terms[1]];
        let d = planner
            .plan(
                &q,
                10,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        assert!(matches!(
            d.chosen,
            PhysicalPlan::Fragmented(Strategy::AOnly { .. })
                | PhysicalPlan::Fragmented(Strategy::Switch { .. })
                | PhysicalPlan::PrunedDaat
        ));
        // The unsafe plans must at least be priced.
        assert!(d
            .alternatives
            .iter()
            .any(|a| !a.exact && a.cost.is_finite()));
    }

    #[test]
    fn unindexed_fragments_make_indexed_plans_infeasible() {
        let (c, frag) = fixture(false);
        let planner = Planner::default();
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        let d = planner
            .plan(
                &queries[0].terms,
                10,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        for alt in &d.alternatives {
            if alt.plan == PhysicalPlan::Fragmented(Strategy::AOnly { use_a_index: true }) {
                assert!(!alt.feasible);
            }
        }
    }

    #[test]
    fn n_beyond_collection_disables_the_pruning_discount() {
        let (c, frag) = fixture(true);
        let planner = Planner::default();
        let terms = frag.index().terms_by_df_asc();
        let q = vec![terms[terms.len() - 1], terms[terms.len() - 2]];
        let small = planner
            .plan(
                &q,
                5,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        let all = planner
            .plan(
                &q,
                c.num_docs(),
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        let est = |d: &PlanDecision| {
            d.alternatives
                .iter()
                .find(|a| a.plan == PhysicalPlan::PrunedDaat)
                .unwrap()
                .est_postings
        };
        assert!(est(&small) < est(&all));
        assert_eq!(est(&all), all.profile.volume);
    }

    #[test]
    fn calibration_moves_the_prune_weight_toward_measurements() {
        let (c, frag) = fixture(true);
        let mut planner = Planner::default();
        let mut engines = EngineSet::new(
            Arc::clone(&frag),
            RankingModel::default(),
            SwitchPolicy::default(),
        );
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        let before = planner.model.weights.daat_prune;
        for q in queries.iter().take(20) {
            let d = planner
                .plan(
                    &q.terms,
                    10,
                    &frag,
                    RankingModel::default(),
                    SwitchPolicy::default(),
                )
                .unwrap();
            let rep = engines
                .execute(PhysicalPlan::PrunedDaat, &q.terms, 10)
                .unwrap();
            planner.observe(PhysicalPlan::PrunedDaat, &d.profile, &rep);
        }
        assert!(planner.observations() > 0);
        let after = planner.model.weights.daat_prune;
        assert!(after > 0.0 && after <= 1.0);
        // With 20 observations the learned median has replaced the
        // default prior (equality would be a one-in-a-million fluke).
        assert_ne!(before, after);
    }

    #[test]
    fn memo_answers_repeat_query_classes_without_rewalking() {
        let (c, frag) = fixture(true);
        let mut planner = Planner::default();
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        let q = &queries[0];
        let fresh = planner
            .plan(
                &q.terms,
                10,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        let (first, hit1) = planner
            .plan_memoized(
                &q.terms,
                10,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        assert!(!hit1, "first sighting of a signature is a miss");
        assert_eq!(first.chosen, fresh.chosen);
        assert_eq!(first.alternatives.len(), PhysicalPlan::ALL.len());
        let (second, hit2) = planner
            .plan_memoized(
                &q.terms,
                10,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        assert!(hit2);
        assert_eq!(second.chosen, fresh.chosen, "memo never changes the winner");
        assert_eq!(second.alternatives.len(), 1, "alternatives not re-walked");
        assert!(second.alternatives[0].reason.contains("memo: HIT"));
        assert_eq!(second.chosen_alternative().plan, second.chosen);
        // The profile is still read fresh on a hit (observe() needs it).
        assert_eq!(second.profile.volume, fresh.profile.volume);
        let stats = planner.memo_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(stats.entries >= 1);
    }

    #[test]
    fn calibration_drift_flash_invalidates_the_memo() {
        let (c, frag) = fixture(true);
        let mut planner = Planner::default();
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        let q = &queries[0];
        let (d, _) = planner
            .plan_memoized(
                &q.terms,
                10,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        assert!(planner.memo_stats().entries > 0);
        // Feed observations claiming the pruned kernel scanned the whole
        // volume: the learned median is driven to 1.0, far beyond the
        // drift tolerance from any default weight.
        let report = ExecReport {
            postings_scanned: d.profile.volume as usize,
            ..ExecReport::default()
        };
        for _ in 0..64 {
            planner.observe(PhysicalPlan::PrunedDaat, &d.profile, &report);
        }
        let stats = planner.memo_stats();
        assert!(stats.invalidations >= 1, "drift must clear the memo");
        assert_eq!(stats.entries, 0);
        let (_, hit) = planner
            .plan_memoized(
                &q.terms,
                10,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        assert!(!hit, "post-invalidation lookups miss and re-price");
    }

    #[test]
    fn render_marks_the_chosen_operator() {
        let (c, frag) = fixture(true);
        let planner = Planner::default();
        let queries = generate_queries(&c, &QueryConfig::default()).unwrap();
        let d = planner
            .plan(
                &queries[0].terms,
                10,
                &frag,
                RankingModel::default(),
                SwitchPolicy::default(),
            )
            .unwrap();
        let text = d.render();
        assert!(text.contains("->"));
        assert!(text.contains(d.chosen.name()));
        for plan in PhysicalPlan::ALL {
            assert!(text.contains(plan.name()), "missing {}", plan.name());
        }
    }
}
