//! Structure types and type inference for algebra expressions.

use std::fmt;

use crate::value::Value;

/// The type of an algebra value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoaType {
    /// Integer atom.
    Int,
    /// Float atom.
    Float,
    /// String atom.
    Str,
    /// Boolean atom.
    Bool,
    /// LIST of an element type.
    List(Box<MoaType>),
    /// BAG of an element type.
    Bag(Box<MoaType>),
    /// SET of an element type.
    Set(Box<MoaType>),
    /// TUPLE of component types.
    Tuple(Vec<MoaType>),
    /// MM ranked list.
    Ranked,
    /// Unknown/any element type (empty collections).
    Any,
}

impl MoaType {
    /// The type of a concrete value. Element types of heterogeneous or
    /// empty collections degrade to [`MoaType::Any`].
    pub fn of(value: &Value) -> MoaType {
        fn elem(items: &[Value]) -> MoaType {
            let mut it = items.iter();
            let first = match it.next() {
                None => return MoaType::Any,
                Some(v) => MoaType::of(v),
            };
            for v in it {
                if MoaType::of(v) != first {
                    return MoaType::Any;
                }
            }
            first
        }
        match value {
            Value::Int(_) => MoaType::Int,
            Value::Float(_) => MoaType::Float,
            Value::Str(_) => MoaType::Str,
            Value::Bool(_) => MoaType::Bool,
            Value::List(v) => MoaType::List(Box::new(elem(v))),
            Value::Bag(v) => MoaType::Bag(Box::new(elem(v))),
            Value::Set(v) => MoaType::Set(Box::new(elem(v))),
            Value::Tuple(v) => MoaType::Tuple(v.iter().map(MoaType::of).collect()),
            Value::Ranked(_) => MoaType::Ranked,
        }
    }

    /// Structural compatibility: `Any` unifies with anything.
    pub fn compatible(&self, other: &MoaType) -> bool {
        match (self, other) {
            (MoaType::Any, _) | (_, MoaType::Any) => true,
            (MoaType::List(a), MoaType::List(b))
            | (MoaType::Bag(a), MoaType::Bag(b))
            | (MoaType::Set(a), MoaType::Set(b)) => a.compatible(b),
            (MoaType::Tuple(a), MoaType::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.compatible(y))
            }
            (a, b) => a == b,
        }
    }

    /// Whether this is any collection type.
    pub fn is_collection(&self) -> bool {
        matches!(
            self,
            MoaType::List(_) | MoaType::Bag(_) | MoaType::Set(_) | MoaType::Ranked
        )
    }
}

impl fmt::Display for MoaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoaType::Int => f.write_str("INT"),
            MoaType::Float => f.write_str("FLT"),
            MoaType::Str => f.write_str("STR"),
            MoaType::Bool => f.write_str("BOOL"),
            MoaType::List(e) => write!(f, "LIST<{e}>"),
            MoaType::Bag(e) => write!(f, "BAG<{e}>"),
            MoaType::Set(e) => write!(f, "SET<{e}>"),
            MoaType::Tuple(es) => {
                f.write_str("TUPLE<")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(">")
            }
            MoaType::Ranked => f.write_str("RANKED"),
            MoaType::Any => f.write_str("ANY"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_of_atoms_and_collections() {
        assert_eq!(MoaType::of(&Value::Int(1)), MoaType::Int);
        assert_eq!(
            MoaType::of(&Value::int_list([1, 2])),
            MoaType::List(Box::new(MoaType::Int))
        );
        assert_eq!(
            MoaType::of(&Value::bag(vec![Value::Float(0.5)])),
            MoaType::Bag(Box::new(MoaType::Float))
        );
        assert_eq!(MoaType::of(&Value::ranked(vec![])), MoaType::Ranked);
    }

    #[test]
    fn empty_and_mixed_collections_are_any() {
        assert_eq!(
            MoaType::of(&Value::List(vec![])),
            MoaType::List(Box::new(MoaType::Any))
        );
        assert_eq!(
            MoaType::of(&Value::List(vec![Value::Int(1), Value::Str("x".into())])),
            MoaType::List(Box::new(MoaType::Any))
        );
    }

    #[test]
    fn tuple_types_are_positional() {
        let t = MoaType::of(&Value::Tuple(vec![Value::Int(1), Value::Bool(true)]));
        assert_eq!(t, MoaType::Tuple(vec![MoaType::Int, MoaType::Bool]));
    }

    #[test]
    fn compatibility_rules() {
        let li = MoaType::List(Box::new(MoaType::Int));
        let la = MoaType::List(Box::new(MoaType::Any));
        let bi = MoaType::Bag(Box::new(MoaType::Int));
        assert!(li.compatible(&la));
        assert!(la.compatible(&li));
        assert!(!li.compatible(&bi));
        assert!(MoaType::Any.compatible(&bi));
        assert!(MoaType::Tuple(vec![MoaType::Int]).compatible(&MoaType::Tuple(vec![MoaType::Any])));
        assert!(!MoaType::Tuple(vec![MoaType::Int])
            .compatible(&MoaType::Tuple(vec![MoaType::Int, MoaType::Int])));
    }

    #[test]
    fn collection_predicate() {
        assert!(MoaType::Ranked.is_collection());
        assert!(MoaType::List(Box::new(MoaType::Int)).is_collection());
        assert!(!MoaType::Int.is_collection());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            MoaType::List(Box::new(MoaType::Int)).to_string(),
            "LIST<INT>"
        );
        assert_eq!(
            MoaType::Tuple(vec![MoaType::Int, MoaType::Str]).to_string(),
            "TUPLE<INT, STR>"
        );
    }
}
