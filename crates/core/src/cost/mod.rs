//! The cost model (the paper's Step 3).
//!
//! "Using Moa, we have the means to handle all types of data in one algebra
//! … this allows us to keep the cost model much simpler." Because every
//! operator — including content ranking — executes inside the one algebra,
//! a single per-element work model covers the whole plan; no per-subsystem
//! delegation is needed.
//!
//! The model predicts the same abstract unit the executor counts
//! ([`crate::ext::ExecContext::elements_processed`]), so prediction accuracy
//! is directly measurable (experiment E8). Cardinality estimation uses
//! catalog knowledge for constants (value ranges) and defaults for unknowns.
//! For non-text data without a known distribution, [`learning`] provides the
//! paper's proposed profiling-based alternative.

pub mod learning;

use std::collections::HashMap;

use crate::error::{CoreError, Result};
use crate::expr::{Expr, ExtensionId};
use crate::value::Value;

/// Per-operation weight constants (abstract work units per element).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Cost per element scanned.
    pub scan: f64,
    /// Cost per binary-search comparison.
    pub compare: f64,
    /// Cost per output element materialized.
    pub materialize: f64,
    /// Cost per posting scanned during ranking.
    pub rank_posting: f64,
    /// Expected fraction of the non-rarest posting volume the
    /// MaxScore-pruned DAAT kernel still scans at small N. The physical
    /// planner's calibration pass refits this weight from measured
    /// `ExecReport` counters (see `moa_core::planner::Planner::observe`).
    pub daat_prune: f64,
    /// Per-posting surcharge of the cursor/accumulator paths on the
    /// block-compressed storage: postings there are delta-unpacked on
    /// access, while the fragmented table paths scan flat `(term, doc,
    /// tf)` arrays. Priced as `decode_posting × est_postings` on top of
    /// `rank_posting` for the three decode-paying plans, so the planner's
    /// relative pricing of cursor vs fragmented access reflects the
    /// layout. E17's cursor-walk measurement (mini-block lazy tf decode
    /// over the word-parallel kernels) puts the per-posting unpack at
    /// ~7 ns against a ~35 ns full per-posting scoring pipeline — about
    /// a fifth of the cost.
    pub decode_posting: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // The executor counts every touched element as one unit; the
        // pruning fraction starts at the middle of the still-scanned
        // band experiment E14 measures on the block layout with the
        // quantized mini-block refinement and the df-weighted frequent
        // query slots (4.1x–7.3x reduction at the calibration scale,
        // i.e. a 0.14–0.24 residual fraction), pending calibration.
        CostWeights {
            scan: 1.0,
            compare: 1.0,
            materialize: 1.0,
            rank_posting: 1.0,
            daat_prune: 0.2,
            decode_posting: 0.2,
        }
    }
}

/// A cost estimate for a (sub)expression.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub struct Estimate {
    /// Estimated output cardinality.
    pub rows: f64,
    /// Estimated total work (including sub-expressions).
    pub cost: f64,
}

/// Catalog information about the attached IR collection, for costing
/// MMRANK operators and pricing physical retrieval alternatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrCostInfo {
    /// Number of documents.
    pub num_docs: f64,
    /// Postings volume the configured strategy scans per query (e.g. the
    /// full volume for `FullScan`, fragment A's volume for `AOnly`).
    pub postings_per_query: f64,
    /// Fragment A's table volume (entries).
    pub volume_a: f64,
    /// Fragment B's table volume (entries).
    pub volume_b: f64,
    /// Whether fragment A carries a non-dense index.
    pub a_indexed: bool,
    /// Whether fragment B carries a non-dense index.
    pub b_indexed: bool,
    /// The non-dense indexes' block granularity (per-term lookup slack).
    pub index_block: f64,
}

impl IrCostInfo {
    /// Info with only the collection-level figures (no fragment catalog) —
    /// enough for the algebra-level MMRANK estimates.
    pub fn basic(num_docs: f64, postings_per_query: f64) -> IrCostInfo {
        IrCostInfo {
            num_docs,
            postings_per_query,
            volume_a: 0.0,
            volume_b: postings_per_query,
            a_indexed: false,
            b_indexed: false,
            index_block: 0.0,
        }
    }

    /// Read the fragment catalog's figures, with the caller-supplied
    /// postings-per-query prior — the single construction path shared by
    /// the session's algebra estimator and the physical planner, so the
    /// two can never disagree about the catalog snapshot.
    pub fn from_catalog(frag: &moa_ir::FragmentedIndex, postings_per_query: f64) -> IrCostInfo {
        let a = frag.fragment_a();
        let b = frag.fragment_b();
        IrCostInfo {
            num_docs: frag.index().num_docs() as f64,
            postings_per_query,
            volume_a: a.volume() as f64,
            volume_b: b.volume() as f64,
            a_indexed: a.has_sparse_index(),
            b_indexed: b.has_sparse_index(),
            index_block: a.sparse_block_size().or(b.sparse_block_size()).unwrap_or(0) as f64,
        }
    }
}

/// Estimation context: variable cardinalities plus optional IR info.
#[derive(Debug, Clone, Default)]
pub struct CostContext {
    /// Known cardinalities of free variables.
    pub var_rows: HashMap<String, f64>,
    /// IR collection info for MMRANK operators.
    pub ir: Option<IrCostInfo>,
    /// Cardinality assumed for unknown variables.
    pub default_rows: f64,
    /// Selectivity assumed for un-estimable range predicates.
    pub default_selectivity: f64,
}

impl CostContext {
    /// A context with sensible defaults (1000-row unknowns, 1/3 selectivity).
    pub fn new() -> CostContext {
        CostContext {
            var_rows: HashMap::new(),
            ir: None,
            default_rows: 1_000.0,
            default_selectivity: 1.0 / 3.0,
        }
    }
}

/// The plan cost model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel {
    /// Weight constants.
    pub weights: CostWeights,
}

impl CostModel {
    /// Estimate output cardinality and total work of `expr`.
    pub fn estimate(&self, expr: &Expr, ctx: &CostContext) -> Result<Estimate> {
        let w = self.weights;
        match expr {
            Expr::Const(v) => Ok(Estimate {
                rows: v.cardinality() as f64,
                cost: 0.0,
            }),
            Expr::Var(name) => Ok(Estimate {
                rows: ctx.var_rows.get(name).copied().unwrap_or(ctx.default_rows),
                cost: 0.0,
            }),
            Expr::Apply { ext, op, args } => {
                let mut child_cost = 0.0;
                let mut child: Vec<Estimate> = Vec::with_capacity(args.len());
                for a in args {
                    let e = self.estimate(a, ctx)?;
                    child_cost += e.cost;
                    child.push(e);
                }
                let input = child.first().copied().unwrap_or(Estimate {
                    rows: 0.0,
                    cost: 0.0,
                });
                let n = input.rows.max(0.0);
                let (rows, op_cost) = match (ext, op.as_str()) {
                    // --- selections ---
                    (_, "select") => {
                        let sel = range_selectivity(args, ctx);
                        (n * sel, w.scan * n)
                    }
                    (_, "select_ordered") => {
                        let sel = range_selectivity(args, ctx);
                        let out = n * sel;
                        (
                            out,
                            w.compare * 2.0 * n.max(2.0).log2() + w.materialize * out,
                        )
                    }
                    // --- list ops ---
                    (ExtensionId::List, "sort") => (n, w.scan * n * n.max(2.0).log2()),
                    (ExtensionId::List, "topn") => {
                        let k = const_int(args.get(1)).unwrap_or(n);
                        (k.min(n), w.scan * n)
                    }
                    (ExtensionId::List, "firstn") => {
                        let k = const_int(args.get(1)).unwrap_or(n);
                        (k.min(n), w.scan * k.min(n))
                    }
                    (ExtensionId::List, "nth") => (1.0, w.scan),
                    (ExtensionId::List, "length") => (1.0, w.scan),
                    (ExtensionId::List, "sum") => (1.0, w.scan * n),
                    (ExtensionId::List, "reverse") => (n, w.scan * n),
                    (ExtensionId::List, "concat") => {
                        let m = child.get(1).map_or(0.0, |e| e.rows);
                        (n + m, w.scan * (n + m))
                    }
                    (ExtensionId::List, "projecttobag") => (n, w.scan * n),
                    // --- bag ops ---
                    (ExtensionId::Bag, "count") => (1.0, w.scan),
                    (ExtensionId::Bag, "sum") => (1.0, w.scan * n),
                    (ExtensionId::Bag, "contains") => (1.0, w.scan * n),
                    (ExtensionId::Bag, "union") => {
                        let m = child.get(1).map_or(0.0, |e| e.rows);
                        (n + m, w.scan * (n + m))
                    }
                    (ExtensionId::Bag, "projecttoset") => (n * 0.9, w.scan * n),
                    (ExtensionId::Bag, "projecttolist") => (n, w.scan * n),
                    // --- set ops ---
                    (ExtensionId::Set, "member") => (1.0, w.scan * n),
                    (ExtensionId::Set, "member_ordered") => {
                        (1.0, w.compare * 2.0 * n.max(2.0).log2())
                    }
                    (ExtensionId::Set, "card") => (1.0, w.scan),
                    (ExtensionId::Set, "union") => {
                        let m = child.get(1).map_or(0.0, |e| e.rows);
                        (n + m, w.scan * (n + m))
                    }
                    (ExtensionId::Set, "projecttolist") => (n, w.scan * n),
                    // --- tuple ops ---
                    (ExtensionId::Tuple, "get" | "arity") => (1.0, w.scan),
                    (ExtensionId::Tuple, "make") => (args.len() as f64, w.scan * args.len() as f64),
                    // --- mmrank ops ---
                    (ExtensionId::MmRank, "rank") => {
                        let ir = ctx.ir.ok_or(CoreError::NoIrRuntime)?;
                        (
                            ir.num_docs,
                            w.rank_posting * ir.postings_per_query + w.materialize * ir.num_docs,
                        )
                    }
                    (ExtensionId::MmRank, "rank_topn") => {
                        let ir = ctx.ir.ok_or(CoreError::NoIrRuntime)?;
                        let k = const_int(args.get(1)).unwrap_or(ir.num_docs);
                        (
                            k.min(ir.num_docs),
                            w.rank_posting * ir.postings_per_query
                                + w.materialize * k.min(ir.num_docs),
                        )
                    }
                    (ExtensionId::MmRank, "topn") => {
                        let k = const_int(args.get(1)).unwrap_or(n);
                        (k.min(n), w.scan * k.min(n))
                    }
                    (ExtensionId::MmRank, "cutoff") => {
                        let out = n * ctx.default_selectivity;
                        (out, w.compare * n.max(2.0).log2() + w.materialize * out)
                    }
                    (ExtensionId::MmRank, "count") => (1.0, w.scan),
                    (ExtensionId::MmRank, "projecttolist" | "scores") => (n, w.scan * n),
                    (ext, op) => {
                        return Err(CoreError::UnknownOp {
                            ext: *ext,
                            op: op.to_owned(),
                        })
                    }
                };
                Ok(Estimate {
                    rows: rows.max(0.0),
                    cost: child_cost + op_cost,
                })
            }
        }
    }

    /// Pick the cheaper of two plans (used by cost-based rewrite choice);
    /// ties favour the first.
    pub fn cheaper<'e>(&self, a: &'e Expr, b: &'e Expr, ctx: &CostContext) -> Result<&'e Expr> {
        let ca = self.estimate(a, ctx)?.cost;
        let cb = self.estimate(b, ctx)?.cost;
        Ok(if cb < ca { b } else { a })
    }
}

/// Selectivity of a `[lo, hi]` range over the first argument, when both
/// the bounds and the input value range are known.
fn range_selectivity(args: &[Expr], ctx: &CostContext) -> f64 {
    let (Some(lo), Some(hi)) = (
        args.get(1).and_then(const_float),
        args.get(2).and_then(const_float),
    ) else {
        return ctx.default_selectivity;
    };
    let Some(Expr::Const(input)) = args.first() else {
        return ctx.default_selectivity;
    };
    let items = match input {
        Value::List(v) | Value::Bag(v) | Value::Set(v) => v,
        _ => return ctx.default_selectivity,
    };
    let floats: Vec<f64> = items.iter().filter_map(Value::as_float).collect();
    if floats.len() < 2 {
        return ctx.default_selectivity;
    }
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &f in &floats {
        min = min.min(f);
        max = max.max(f);
    }
    if max <= min {
        return if lo <= min && min <= hi { 1.0 } else { 0.0 };
    }
    let covered = (hi.min(max) - lo.max(min)).max(0.0);
    (covered / (max - min)).clamp(0.0, 1.0)
}

fn const_int(e: Option<&Expr>) -> Option<f64> {
    match e {
        Some(Expr::Const(Value::Int(i))) => Some(*i as f64),
        _ => None,
    }
}

fn const_float(e: &Expr) -> Option<f64> {
    match e {
        Expr::Const(v) => v.as_float(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{evaluate, Env};
    use crate::ext::{ExecContext, Registry};

    fn ctx() -> CostContext {
        CostContext::new()
    }

    #[test]
    fn const_and_var_cardinalities() {
        let m = CostModel::default();
        let e = m
            .estimate(&Expr::constant(Value::int_list([1, 2, 3])), &ctx())
            .unwrap();
        assert_eq!(e.rows, 3.0);
        assert_eq!(e.cost, 0.0);

        let mut c = ctx();
        c.var_rows.insert("x".into(), 42.0);
        assert_eq!(m.estimate(&Expr::var("x"), &c).unwrap().rows, 42.0);
        assert_eq!(m.estimate(&Expr::var("y"), &c).unwrap().rows, 1000.0);
    }

    #[test]
    fn select_scan_costs_linear_ordered_costs_log() {
        let m = CostModel::default();
        let big: Vec<Value> = (0..1024).map(Value::Int).collect();
        let base = Expr::constant(Value::List(big));
        let scan = Expr::list_select(base.clone(), Value::Int(0), Value::Int(9));
        let ordered = Expr::Apply {
            ext: ExtensionId::List,
            op: "select_ordered".to_owned(),
            args: vec![base, Expr::Const(Value::Int(0)), Expr::Const(Value::Int(9))],
        };
        let cs = m.estimate(&scan, &ctx()).unwrap();
        let co = m.estimate(&ordered, &ctx()).unwrap();
        assert!(
            co.cost * 10.0 < cs.cost,
            "ordered {} vs scan {}",
            co.cost,
            cs.cost
        );
    }

    #[test]
    fn range_selectivity_uses_value_range() {
        let m = CostModel::default();
        let items: Vec<Value> = (0..100).map(Value::Int).collect();
        let e = Expr::list_select(
            Expr::constant(Value::List(items)),
            Value::Int(0),
            Value::Int(49),
        );
        let est = m.estimate(&e, &ctx()).unwrap();
        assert!((est.rows - 50.0).abs() < 5.0, "rows={}", est.rows);
    }

    #[test]
    fn unknown_range_uses_default_selectivity() {
        let m = CostModel::default();
        let e = Expr::list_select(Expr::var("l"), Value::Int(0), Value::Int(9));
        let est = m.estimate(&e, &ctx()).unwrap();
        assert!((est.rows - 1000.0 / 3.0).abs() < 1.0);
    }

    #[test]
    fn rank_requires_ir_info() {
        let m = CostModel::default();
        let e = Expr::mm_rank(Expr::var("q"));
        assert!(m.estimate(&e, &ctx()).is_err());
        let mut c = ctx();
        c.ir = Some(IrCostInfo::basic(10_000.0, 50_000.0));
        let est = m.estimate(&e, &c).unwrap();
        assert_eq!(est.rows, 10_000.0);
        assert!(est.cost >= 50_000.0);
    }

    #[test]
    fn fused_rank_topn_is_cheaper_than_rank_then_topn() {
        let m = CostModel::default();
        let mut c = ctx();
        c.ir = Some(IrCostInfo::basic(10_000.0, 50_000.0));
        let unfused = Expr::mm_topn(Expr::mm_rank(Expr::var("q")), 10);
        let fused = Expr::Apply {
            ext: ExtensionId::MmRank,
            op: "rank_topn".to_owned(),
            args: vec![Expr::var("q"), Expr::Const(Value::Int(10))],
        };
        let cu = m.estimate(&unfused, &c).unwrap();
        let cf = m.estimate(&fused, &c).unwrap();
        assert!(cf.cost < cu.cost);
        assert_eq!(m.cheaper(&unfused, &fused, &c).unwrap(), &fused);
    }

    #[test]
    fn estimates_track_measured_work_for_scans() {
        // The model predicts the executor's work counter within a small
        // factor for scan-shaped plans (the E8 sanity check in miniature).
        let m = CostModel::default();
        let reg = Registry::standard();
        let items: Vec<Value> = (0..500).map(Value::Int).collect();
        let exprs = vec![
            Expr::list_select(
                Expr::constant(Value::List(items.clone())),
                Value::Int(100),
                Value::Int(200),
            ),
            Expr::projecttobag(Expr::constant(Value::List(items.clone()))),
            Expr::list_sum(Expr::constant(Value::List(items))),
        ];
        for e in exprs {
            let est = m.estimate(&e, &ctx()).unwrap();
            let mut xc = ExecContext::new();
            evaluate(&e, &Env::new(), &reg, &mut xc).unwrap();
            let measured = xc.elements_processed as f64;
            assert!(
                est.cost >= measured * 0.3 && est.cost <= measured * 3.0,
                "estimate {} vs measured {measured} for {e}",
                est.cost
            );
        }
    }

    #[test]
    fn unknown_op_is_error() {
        let m = CostModel::default();
        let e = Expr::apply(ExtensionId::List, "nonexistent", vec![Expr::var("x")]);
        assert!(matches!(
            m.estimate(&e, &ctx()),
            Err(CoreError::UnknownOp { .. })
        ));
    }

    #[test]
    fn constant_value_range_degenerate() {
        let m = CostModel::default();
        let e = Expr::list_select(
            Expr::constant(Value::List(vec![Value::Int(5), Value::Int(5)])),
            Value::Int(5),
            Value::Int(5),
        );
        let est = m.estimate(&e, &ctx()).unwrap();
        assert_eq!(est.rows, 2.0);
    }
}
