//! Learned (profiled) distributions — the paper's future-work extension.
//!
//! "For the case of non-text content data we are yet not aware of a special
//! distribution of the data (such as Zipf for text). Maybe such a
//! distribution can be 'learned' by the system by means of profiling,
//! although the thus found distribution most likely will not be independent
//! from the data set."
//!
//! [`LearnedDistribution`] implements exactly that: it observes values as
//! queries touch them (profiling), maintains an equi-width histogram over
//! the observed range, and answers the selectivity questions the cost model
//! needs. A staleness guard triggers re-learning when new observations land
//! outside the learned support — the data-set dependence the paper warns
//! about, made explicit.

use moa_storage::stats::EquiWidthHistogram;

/// An incrementally learned value distribution.
#[derive(Debug, Clone)]
pub struct LearnedDistribution {
    /// Raw observations kept until the first fit (and between refits).
    sample: Vec<f64>,
    /// The fitted histogram, once enough observations exist.
    fitted: Option<EquiWidthHistogram>,
    /// Observations outside the fitted support since the last fit.
    out_of_support: usize,
    /// Observations required before the first fit.
    min_sample: usize,
    /// Histogram resolution.
    buckets: usize,
}

impl LearnedDistribution {
    /// Create a learner that fits after `min_sample` observations into
    /// `buckets` histogram buckets.
    pub fn new(min_sample: usize, buckets: usize) -> LearnedDistribution {
        LearnedDistribution {
            sample: Vec::new(),
            fitted: None,
            out_of_support: 0,
            min_sample: min_sample.max(2),
            buckets: buckets.max(1),
        }
    }

    /// Upper bound on retained observations: beyond it the oldest half is
    /// dropped, keeping memory and refit cost constant for long-lived
    /// profiling loops (e.g. the planner observing every served query)
    /// while biasing the fit toward recent data.
    const MAX_SAMPLE: usize = 4096;

    /// Observe one value (profiling hook; called as operators touch data).
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        if self.sample.len() >= Self::MAX_SAMPLE {
            self.sample.drain(..Self::MAX_SAMPLE / 2);
            // The fitted histogram must forget the evicted observations
            // too, or answers would reflect day-one data indefinitely.
            if self.fitted.is_some() {
                self.refit();
            }
        }
        self.sample.push(value);
        if let Some(h) = &self.fitted {
            if h.estimate_count_ge(value) == 0.0 && value > 0.0
                || h.estimate_count_ge(value) == h.total() as f64 && self.sample.len() > 1
            {
                // Value fell outside the fitted support on either side.
                self.out_of_support += 1;
            }
        }
        let should_fit = self.fitted.is_none() && self.sample.len() >= self.min_sample;
        let should_refit =
            self.fitted.is_some() && self.out_of_support * 10 > self.sample.len().max(1);
        if should_fit || should_refit {
            self.refit();
        }
    }

    /// Observe a batch of values.
    pub fn observe_all(&mut self, values: &[f64]) {
        for &v in values {
            self.observe(v);
        }
    }

    /// Whether a distribution has been learned yet.
    pub fn is_fitted(&self) -> bool {
        self.fitted.is_some()
    }

    /// Number of observations so far.
    pub fn observations(&self) -> usize {
        self.sample.len()
    }

    /// Estimated selectivity of `[lo, hi]` under the learned distribution;
    /// `None` until fitted.
    pub fn selectivity(&self, lo: f64, hi: f64) -> Option<f64> {
        self.fitted.as_ref().map(|h| h.estimate_selectivity(lo, hi))
    }

    /// Estimated count of values `>= x`; `None` until fitted.
    pub fn count_ge(&self, x: f64) -> Option<f64> {
        self.fitted.as_ref().map(|h| h.estimate_count_ge(x))
    }

    /// The cutoff expected to admit at least `n` values (for probabilistic
    /// top-N over non-text feature data); `None` until fitted.
    pub fn cutoff_for_at_least(&self, n: usize) -> Option<f64> {
        self.fitted.as_ref().map(|h| h.cutoff_for_at_least(n))
    }

    /// The learned distribution's median — the cutoff that roughly half
    /// the *fitted* observations lie at or above; `None` until fitted.
    /// Sized against the histogram's own total (not the live sample
    /// count), so it stays a median as observations keep arriving
    /// between refits.
    pub fn median(&self) -> Option<f64> {
        self.fitted
            .as_ref()
            .map(|h| h.cutoff_for_at_least(((h.total() as usize).div_ceil(2)).max(1)))
    }

    fn refit(&mut self) {
        if let Ok(h) = EquiWidthHistogram::build(&self.sample, self.buckets) {
            self.fitted = Some(h);
            self.out_of_support = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfitted_until_min_sample() {
        let mut d = LearnedDistribution::new(10, 8);
        for i in 0..9 {
            d.observe(f64::from(i));
            assert!(!d.is_fitted());
        }
        d.observe(9.0);
        assert!(d.is_fitted());
        assert_eq!(d.observations(), 10);
    }

    #[test]
    fn learned_selectivity_tracks_uniform_data() {
        let mut d = LearnedDistribution::new(100, 20);
        d.observe_all(&(0..1000).map(f64::from).collect::<Vec<_>>());
        let sel = d.selectivity(250.0, 750.0).unwrap();
        assert!((sel - 0.5).abs() < 0.1, "sel={sel}");
    }

    #[test]
    fn learned_cutoff_admits_enough() {
        let values: Vec<f64> = (0..1000).map(f64::from).collect();
        let mut d = LearnedDistribution::new(100, 50);
        d.observe_all(&values);
        let c = d.cutoff_for_at_least(100).unwrap();
        let admitted = values.iter().filter(|&&v| v >= c).count();
        assert!(admitted >= 100, "cutoff {c} admitted {admitted}");
    }

    #[test]
    fn refits_when_distribution_shifts() {
        let mut d = LearnedDistribution::new(50, 16);
        // Learn a [0, 1] distribution…
        d.observe_all(&(0..100).map(|i| f64::from(i) / 100.0).collect::<Vec<_>>());
        assert!(d.is_fitted());
        let before = d.count_ge(5.0).unwrap();
        assert_eq!(before, 0.0);
        // …then the data set changes to [0, 10] (the paper's "not
        // independent from the data set" caveat).
        d.observe_all(&(0..200).map(|i| f64::from(i) / 20.0).collect::<Vec<_>>());
        let after = d.count_ge(5.0).unwrap();
        assert!(after > 0.0, "did not refit: count_ge(5.0) = {after}");
    }

    #[test]
    fn nan_observations_ignored() {
        let mut d = LearnedDistribution::new(2, 4);
        d.observe(f64::NAN);
        d.observe(1.0);
        d.observe(2.0);
        assert_eq!(d.observations(), 2);
        assert!(d.is_fitted());
    }

    #[test]
    fn sample_window_is_bounded_and_refits_on_eviction() {
        let mut d = LearnedDistribution::new(10, 8);
        for i in 0..(LearnedDistribution::MAX_SAMPLE * 3) {
            d.observe(i as f64);
        }
        assert!(d.observations() <= LearnedDistribution::MAX_SAMPLE);
        // Still fitted, and the fit reflects the surviving window, not
        // the evicted day-one data: everything below the window's start
        // counts as zero.
        assert!(d.is_fitted());
        let window_start = (LearnedDistribution::MAX_SAMPLE * 3 - d.observations()) as f64;
        assert_eq!(
            d.count_ge(window_start * 0.5).unwrap(),
            d.count_ge(0.0).unwrap()
        );
        assert!(d.count_ge(window_start + 1.0).unwrap() > 0.0);
    }

    #[test]
    fn median_tracks_the_distribution_center() {
        let mut d = LearnedDistribution::new(50, 32);
        d.observe_all(&(0..1000).map(f64::from).collect::<Vec<_>>());
        let m = d.median().unwrap();
        assert!((m - 500.0).abs() < 60.0, "median {m}");
        // Unlike a raw cutoff_for_at_least(observations/2), the median
        // stays centered as more observations arrive without a refit.
        assert!(LearnedDistribution::new(10, 8).median().is_none());
    }

    #[test]
    fn queries_before_fit_return_none() {
        let d = LearnedDistribution::new(10, 4);
        assert!(d.selectivity(0.0, 1.0).is_none());
        assert!(d.count_ge(0.5).is_none());
        assert!(d.cutoff_for_at_least(3).is_none());
    }
}
