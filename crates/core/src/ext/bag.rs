//! The BAG extension: multisets.
//!
//! Formally a bag has no element order, so the *logical* `select` must scan.
//! The physical variant `select_ordered` exploits an ordered physical
//! representation — knowledge that only the inter-object optimizer can
//! establish (e.g. the bag came from `LIST.projecttobag` of a sorted list).
//! That asymmetry is the crux of the paper's Example 1.

use crate::error::{CoreError, Result};
use crate::expr::ExtensionId;
use crate::ext::list::sum_numeric;
use crate::ext::{expect_arity, sorted_range, type_err, ExecContext, Extension};
use crate::types::MoaType;
use crate::value::Value;

/// The BAG extension.
pub struct BagExt;

const OPS: &[&str] = &[
    "select",
    "select_ordered",
    "count",
    "sum",
    "contains",
    "union",
    "projecttoset",
    "projecttolist",
];

fn get_bag<'a>(v: &'a Value, op: &str) -> Result<&'a [Value]> {
    v.as_bag()
        .ok_or_else(|| type_err(format!("BAG.{op} expects a BAG argument, got {v}")))
}

impl Extension for BagExt {
    fn id(&self) -> ExtensionId {
        ExtensionId::Bag
    }

    fn ops(&self) -> &'static [&'static str] {
        OPS
    }

    fn type_check(&self, op: &str, args: &[MoaType]) -> Result<MoaType> {
        let bag_elem = |t: &MoaType| -> Result<MoaType> {
            match t {
                MoaType::Bag(e) => Ok((**e).clone()),
                MoaType::Any => Ok(MoaType::Any),
                other => Err(type_err(format!("BAG.{op}: expected BAG, got {other}"))),
            }
        };
        match op {
            "select" | "select_ordered" => {
                expect_arity(self.id(), op, args.len(), 3)?;
                let e = bag_elem(&args[0])?;
                if !args[1].compatible(&e) || !args[2].compatible(&e) {
                    return Err(type_err(format!(
                        "BAG.{op}: bounds incompatible with element type {e}"
                    )));
                }
                Ok(MoaType::Bag(Box::new(e)))
            }
            "count" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                bag_elem(&args[0])?;
                Ok(MoaType::Int)
            }
            "sum" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                match bag_elem(&args[0])? {
                    MoaType::Int => Ok(MoaType::Int),
                    MoaType::Float => Ok(MoaType::Float),
                    MoaType::Any => Ok(MoaType::Any),
                    other => Err(type_err(format!("BAG.sum: non-numeric elements {other}"))),
                }
            }
            "contains" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let e = bag_elem(&args[0])?;
                if !args[1].compatible(&e) {
                    return Err(type_err("BAG.contains: probe type mismatch".to_string()));
                }
                Ok(MoaType::Bool)
            }
            "union" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let a = bag_elem(&args[0])?;
                let b = bag_elem(&args[1])?;
                if !a.compatible(&b) {
                    return Err(type_err("BAG.union: element types differ".to_string()));
                }
                Ok(MoaType::Bag(Box::new(a)))
            }
            "projecttoset" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                Ok(MoaType::Set(Box::new(bag_elem(&args[0])?)))
            }
            "projecttolist" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                Ok(MoaType::List(Box::new(bag_elem(&args[0])?)))
            }
            _ => Err(CoreError::UnknownOp {
                ext: self.id(),
                op: op.to_owned(),
            }),
        }
    }

    fn evaluate(&self, op: &str, args: &[Value], ctx: &mut ExecContext) -> Result<Value> {
        match op {
            "select" => {
                expect_arity(self.id(), op, args.len(), 3)?;
                let items = get_bag(&args[0], op)?;
                ctx.work(items.len() as u64);
                ctx.note(format!("BAG.select: scan over {} elements", items.len()));
                let out: Vec<Value> = items
                    .iter()
                    .filter(|v| {
                        v.total_cmp(&args[1]) != std::cmp::Ordering::Less
                            && v.total_cmp(&args[2]) != std::cmp::Ordering::Greater
                    })
                    .cloned()
                    .collect();
                Ok(Value::bag(out))
            }
            "select_ordered" => {
                expect_arity(self.id(), op, args.len(), 3)?;
                let items = get_bag(&args[0], op)?;
                debug_assert!(args[0].is_sorted_asc(), "select_ordered on unsorted rep");
                let mut work = 0u64;
                let (s, e) = sorted_range(items, &args[1], &args[2], &mut work);
                ctx.work(work + (e - s) as u64);
                ctx.note(format!(
                    "BAG.select_ordered: binary search on ordered representation, {work} comparisons"
                ));
                Ok(Value::Bag(items[s..e].to_vec()))
            }
            "count" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_bag(&args[0], op)?;
                ctx.work(1);
                Ok(Value::Int(items.len() as i64))
            }
            "sum" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_bag(&args[0], op)?;
                ctx.work(items.len() as u64);
                sum_numeric(items)
            }
            "contains" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let items = get_bag(&args[0], op)?;
                ctx.work(items.len() as u64);
                Ok(Value::Bool(items.iter().any(|v| v == &args[1])))
            }
            "union" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let a = get_bag(&args[0], op)?;
                let b = get_bag(&args[1], op)?;
                ctx.work((a.len() + b.len()) as u64);
                let mut out = a.to_vec();
                out.extend_from_slice(b);
                Ok(Value::bag(out))
            }
            "projecttoset" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_bag(&args[0], op)?;
                ctx.work(items.len() as u64);
                Ok(Value::set(items.to_vec()))
            }
            "projecttolist" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_bag(&args[0], op)?;
                ctx.work(items.len() as u64);
                // Canonical (sorted) order becomes the list order.
                Ok(Value::List(items.to_vec()))
            }
            _ => Err(CoreError::UnknownOp {
                ext: self.id(),
                op: op.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(items: impl IntoIterator<Item = i64>) -> Value {
        Value::bag(items.into_iter().map(Value::Int).collect())
    }

    fn eval(op: &str, args: &[Value]) -> Result<Value> {
        let mut ctx = ExecContext::new();
        BagExt.evaluate(op, args, &mut ctx)
    }

    #[test]
    fn select_keeps_duplicates() {
        // select({1,2,3,4,4,5}, 2, 4) = {2,3,4,4}
        let b = bag([1, 2, 3, 4, 4, 5]);
        let out = eval("select", &[b, Value::Int(2), Value::Int(4)]).unwrap();
        assert_eq!(out, bag([2, 3, 4, 4]));
    }

    #[test]
    fn select_ordered_agrees_with_select() {
        let b = bag([9, 4, 4, 1, 7]);
        let a = eval("select", &[b.clone(), Value::Int(3), Value::Int(8)]).unwrap();
        let o = eval("select_ordered", &[b, Value::Int(3), Value::Int(8)]).unwrap();
        assert_eq!(a, o);
    }

    #[test]
    fn select_ordered_is_cheaper_than_scan() {
        let big = bag(0..10_000);
        let mut scan_ctx = ExecContext::new();
        BagExt
            .evaluate(
                "select",
                &[big.clone(), Value::Int(10), Value::Int(20)],
                &mut scan_ctx,
            )
            .unwrap();
        let mut bin_ctx = ExecContext::new();
        BagExt
            .evaluate(
                "select_ordered",
                &[big, Value::Int(10), Value::Int(20)],
                &mut bin_ctx,
            )
            .unwrap();
        assert!(bin_ctx.elements_processed * 10 < scan_ctx.elements_processed);
    }

    #[test]
    fn count_sum_contains() {
        let b = bag([4, 4, 5]);
        assert_eq!(
            eval("count", std::slice::from_ref(&b)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval("sum", std::slice::from_ref(&b)).unwrap(),
            Value::Int(13)
        );
        assert_eq!(
            eval("contains", &[b.clone(), Value::Int(4)]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval("contains", &[b, Value::Int(9)]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn union_accumulates_multiplicity() {
        let out = eval("union", &[bag([1, 2]), bag([2, 3])]).unwrap();
        assert_eq!(out, bag([1, 2, 2, 3]));
    }

    #[test]
    fn projections() {
        let b = bag([2, 1, 2]);
        assert_eq!(
            eval("projecttoset", std::slice::from_ref(&b)).unwrap(),
            Value::set(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            eval("projecttolist", &[b]).unwrap(),
            Value::int_list([1, 2, 2])
        );
    }

    #[test]
    fn type_errors() {
        assert!(eval(
            "select",
            &[Value::int_list([1]), Value::Int(0), Value::Int(1)]
        )
        .is_err());
        assert!(eval("count", &[Value::Int(3)]).is_err());
        assert!(matches!(
            eval("nope", &[]),
            Err(CoreError::UnknownOp { .. })
        ));
    }

    #[test]
    fn type_check_signatures() {
        let bi = MoaType::Bag(Box::new(MoaType::Int));
        assert_eq!(
            BagExt
                .type_check("select", &[bi.clone(), MoaType::Int, MoaType::Int])
                .unwrap(),
            bi
        );
        assert_eq!(
            BagExt
                .type_check("count", std::slice::from_ref(&bi))
                .unwrap(),
            MoaType::Int
        );
        assert_eq!(
            BagExt
                .type_check("projecttoset", std::slice::from_ref(&bi))
                .unwrap(),
            MoaType::Set(Box::new(MoaType::Int))
        );
        assert_eq!(
            BagExt
                .type_check("projecttolist", std::slice::from_ref(&bi))
                .unwrap(),
            MoaType::List(Box::new(MoaType::Int))
        );
        assert!(BagExt
            .type_check("select", &[MoaType::Int, MoaType::Int, MoaType::Int])
            .is_err());
        assert!(BagExt
            .type_check("union", &[bi.clone(), MoaType::Bag(Box::new(MoaType::Str))])
            .is_err());
    }

    #[test]
    fn empty_bag_edges() {
        let e = Value::bag(vec![]);
        assert_eq!(
            eval("count", std::slice::from_ref(&e)).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            eval("select", &[e.clone(), Value::Int(0), Value::Int(1)]).unwrap(),
            Value::bag(vec![])
        );
        assert_eq!(eval("sum", &[e]).unwrap(), Value::Int(0));
    }
}
