//! The SET extension: deduplicated collections.

use crate::error::{CoreError, Result};
use crate::expr::ExtensionId;
use crate::ext::{expect_arity, sorted_range, type_err, ExecContext, Extension};
use crate::types::MoaType;
use crate::value::Value;

/// The SET extension.
pub struct SetExt;

const OPS: &[&str] = &[
    "select",
    "select_ordered",
    "member",
    "member_ordered",
    "card",
    "union",
    "projecttolist",
];

fn get_set<'a>(v: &'a Value, op: &str) -> Result<&'a [Value]> {
    v.as_set()
        .ok_or_else(|| type_err(format!("SET.{op} expects a SET argument, got {v}")))
}

impl Extension for SetExt {
    fn id(&self) -> ExtensionId {
        ExtensionId::Set
    }

    fn ops(&self) -> &'static [&'static str] {
        OPS
    }

    fn type_check(&self, op: &str, args: &[MoaType]) -> Result<MoaType> {
        let set_elem = |t: &MoaType| -> Result<MoaType> {
            match t {
                MoaType::Set(e) => Ok((**e).clone()),
                MoaType::Any => Ok(MoaType::Any),
                other => Err(type_err(format!("SET.{op}: expected SET, got {other}"))),
            }
        };
        match op {
            "select" | "select_ordered" => {
                expect_arity(self.id(), op, args.len(), 3)?;
                let e = set_elem(&args[0])?;
                if !args[1].compatible(&e) || !args[2].compatible(&e) {
                    return Err(type_err(format!(
                        "SET.{op}: bounds incompatible with element type {e}"
                    )));
                }
                Ok(MoaType::Set(Box::new(e)))
            }
            "member" | "member_ordered" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let e = set_elem(&args[0])?;
                if !args[1].compatible(&e) {
                    return Err(type_err(format!("SET.{op}: probe type mismatch")));
                }
                Ok(MoaType::Bool)
            }
            "card" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                set_elem(&args[0])?;
                Ok(MoaType::Int)
            }
            "union" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let a = set_elem(&args[0])?;
                let b = set_elem(&args[1])?;
                if !a.compatible(&b) {
                    return Err(type_err("SET.union: element types differ".to_string()));
                }
                Ok(MoaType::Set(Box::new(a)))
            }
            "projecttolist" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                Ok(MoaType::List(Box::new(set_elem(&args[0])?)))
            }
            _ => Err(CoreError::UnknownOp {
                ext: self.id(),
                op: op.to_owned(),
            }),
        }
    }

    fn evaluate(&self, op: &str, args: &[Value], ctx: &mut ExecContext) -> Result<Value> {
        match op {
            "select" => {
                expect_arity(self.id(), op, args.len(), 3)?;
                let items = get_set(&args[0], op)?;
                ctx.work(items.len() as u64);
                let out: Vec<Value> = items
                    .iter()
                    .filter(|v| {
                        v.total_cmp(&args[1]) != std::cmp::Ordering::Less
                            && v.total_cmp(&args[2]) != std::cmp::Ordering::Greater
                    })
                    .cloned()
                    .collect();
                Ok(Value::Set(out))
            }
            "select_ordered" => {
                expect_arity(self.id(), op, args.len(), 3)?;
                let items = get_set(&args[0], op)?;
                let mut work = 0u64;
                let (s, e) = sorted_range(items, &args[1], &args[2], &mut work);
                ctx.work(work + (e - s) as u64);
                ctx.note("SET.select_ordered: binary search".to_string());
                Ok(Value::Set(items[s..e].to_vec()))
            }
            "member" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let items = get_set(&args[0], op)?;
                ctx.work(items.len() as u64);
                Ok(Value::Bool(items.iter().any(|v| v == &args[1])))
            }
            "member_ordered" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let items = get_set(&args[0], op)?;
                let mut work = 0u64;
                let (s, e) = sorted_range(items, &args[1], &args[1], &mut work);
                ctx.work(work);
                Ok(Value::Bool(e > s))
            }
            "card" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_set(&args[0], op)?;
                ctx.work(1);
                Ok(Value::Int(items.len() as i64))
            }
            "union" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let a = get_set(&args[0], op)?;
                let b = get_set(&args[1], op)?;
                ctx.work((a.len() + b.len()) as u64);
                let mut out = a.to_vec();
                out.extend_from_slice(b);
                Ok(Value::set(out))
            }
            "projecttolist" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_set(&args[0], op)?;
                ctx.work(items.len() as u64);
                Ok(Value::List(items.to_vec()))
            }
            _ => Err(CoreError::UnknownOp {
                ext: self.id(),
                op: op.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: impl IntoIterator<Item = i64>) -> Value {
        Value::set(items.into_iter().map(Value::Int).collect())
    }

    fn eval(op: &str, args: &[Value]) -> Result<Value> {
        let mut ctx = ExecContext::new();
        SetExt.evaluate(op, args, &mut ctx)
    }

    #[test]
    fn select_range() {
        let s = set([1, 2, 3, 4, 5]);
        assert_eq!(
            eval("select", &[s, Value::Int(2), Value::Int(4)]).unwrap(),
            set([2, 3, 4])
        );
    }

    #[test]
    fn ordered_variants_agree() {
        let s = set([5, 3, 8, 1]);
        assert_eq!(
            eval("select", &[s.clone(), Value::Int(2), Value::Int(6)]).unwrap(),
            eval("select_ordered", &[s.clone(), Value::Int(2), Value::Int(6)]).unwrap()
        );
        assert_eq!(
            eval("member", &[s.clone(), Value::Int(3)]).unwrap(),
            eval("member_ordered", &[s.clone(), Value::Int(3)]).unwrap()
        );
        assert_eq!(
            eval("member", &[s.clone(), Value::Int(9)]).unwrap(),
            eval("member_ordered", &[s, Value::Int(9)]).unwrap()
        );
    }

    #[test]
    fn member_ordered_is_cheaper() {
        let s = set(0..10_000);
        let mut scan = ExecContext::new();
        SetExt
            .evaluate("member", &[s.clone(), Value::Int(9_999)], &mut scan)
            .unwrap();
        let mut bin = ExecContext::new();
        SetExt
            .evaluate("member_ordered", &[s, Value::Int(9_999)], &mut bin)
            .unwrap();
        assert!(bin.elements_processed * 10 < scan.elements_processed);
    }

    #[test]
    fn card_and_union_dedupe() {
        assert_eq!(eval("card", &[set([1, 2, 3])]).unwrap(), Value::Int(3));
        assert_eq!(
            eval("union", &[set([1, 2]), set([2, 3])]).unwrap(),
            set([1, 2, 3])
        );
    }

    #[test]
    fn projecttolist_canonical_order() {
        assert_eq!(
            eval("projecttolist", &[set([3, 1, 2])]).unwrap(),
            Value::int_list([1, 2, 3])
        );
    }

    #[test]
    fn type_check_and_errors() {
        let si = MoaType::Set(Box::new(MoaType::Int));
        assert_eq!(
            SetExt
                .type_check("member", &[si.clone(), MoaType::Int])
                .unwrap(),
            MoaType::Bool
        );
        assert!(SetExt
            .type_check("member", &[si.clone(), MoaType::Str])
            .is_err());
        assert_eq!(SetExt.type_check("card", &[si]).unwrap(), MoaType::Int);
        assert!(eval("card", &[Value::Int(1)]).is_err());
        assert!(matches!(
            eval("nope", &[]),
            Err(CoreError::UnknownOp { .. })
        ));
    }
}
