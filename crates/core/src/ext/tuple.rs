//! The TUPLE extension: positional records.

use crate::error::{CoreError, Result};
use crate::expr::ExtensionId;
use crate::ext::{expect_arity, get_usize, type_err, ExecContext, Extension};
use crate::types::MoaType;
use crate::value::Value;

/// The TUPLE extension.
pub struct TupleExt;

const OPS: &[&str] = &["get", "arity", "make"];

fn get_tuple<'a>(v: &'a Value, op: &str) -> Result<&'a [Value]> {
    match v {
        Value::Tuple(items) => Ok(items),
        other => Err(type_err(format!(
            "TUPLE.{op} expects a TUPLE argument, got {other}"
        ))),
    }
}

impl Extension for TupleExt {
    fn id(&self) -> ExtensionId {
        ExtensionId::Tuple
    }

    fn ops(&self) -> &'static [&'static str] {
        OPS
    }

    fn type_check(&self, op: &str, args: &[MoaType]) -> Result<MoaType> {
        match op {
            "get" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                if !args[1].compatible(&MoaType::Int) {
                    return Err(type_err("TUPLE.get: index must be INT".to_string()));
                }
                match &args[0] {
                    MoaType::Tuple(_) | MoaType::Any => Ok(MoaType::Any),
                    other => Err(type_err(format!("TUPLE.get: expected TUPLE, got {other}"))),
                }
            }
            "arity" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                match &args[0] {
                    MoaType::Tuple(_) | MoaType::Any => Ok(MoaType::Int),
                    other => Err(type_err(format!(
                        "TUPLE.arity: expected TUPLE, got {other}"
                    ))),
                }
            }
            "make" => Ok(MoaType::Tuple(args.to_vec())),
            _ => Err(CoreError::UnknownOp {
                ext: self.id(),
                op: op.to_owned(),
            }),
        }
    }

    fn evaluate(&self, op: &str, args: &[Value], ctx: &mut ExecContext) -> Result<Value> {
        match op {
            "get" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let items = get_tuple(&args[0], op)?;
                let i = get_usize(&args[1], "index")?;
                ctx.work(1);
                items
                    .get(i)
                    .cloned()
                    .ok_or_else(|| CoreError::Runtime(format!("TUPLE.get: index {i} out of range")))
            }
            "arity" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_tuple(&args[0], op)?;
                ctx.work(1);
                Ok(Value::Int(items.len() as i64))
            }
            "make" => {
                ctx.work(args.len() as u64);
                Ok(Value::Tuple(args.to_vec()))
            }
            _ => Err(CoreError::UnknownOp {
                ext: self.id(),
                op: op.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(op: &str, args: &[Value]) -> Result<Value> {
        let mut ctx = ExecContext::new();
        TupleExt.evaluate(op, args, &mut ctx)
    }

    #[test]
    fn get_and_arity() {
        let t = Value::Tuple(vec![Value::Int(1), Value::Str("x".into())]);
        assert_eq!(
            eval("get", &[t.clone(), Value::Int(1)]).unwrap(),
            Value::Str("x".into())
        );
        assert_eq!(
            eval("arity", std::slice::from_ref(&t)).unwrap(),
            Value::Int(2)
        );
        assert!(eval("get", &[t, Value::Int(5)]).is_err());
    }

    #[test]
    fn make_constructs_tuples() {
        let out = eval("make", &[Value::Int(1), Value::Bool(true)]).unwrap();
        assert_eq!(out, Value::Tuple(vec![Value::Int(1), Value::Bool(true)]));
    }

    #[test]
    fn type_checks() {
        let tt = MoaType::Tuple(vec![MoaType::Int, MoaType::Str]);
        assert_eq!(
            TupleExt
                .type_check("get", &[tt.clone(), MoaType::Int])
                .unwrap(),
            MoaType::Any
        );
        assert_eq!(TupleExt.type_check("arity", &[tt]).unwrap(), MoaType::Int);
        assert!(TupleExt
            .type_check("get", &[MoaType::Int, MoaType::Int])
            .is_err());
        assert!(matches!(
            TupleExt.type_check("nope", &[]),
            Err(CoreError::UnknownOp { .. })
        ));
    }

    #[test]
    fn non_tuple_argument_rejected() {
        assert!(eval("arity", &[Value::Int(1)]).is_err());
    }
}
