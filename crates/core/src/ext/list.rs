//! The LIST extension: ordered collections.
//!
//! Operators include both the logical set (`select`, `sort`, `topn`, …) and
//! the physical variant `select_ordered`, which the intra-object optimizer
//! substitutes when the input's ascending order has been *proven* — turning
//! an O(n) scan into an O(log n + result) binary search. This is the "even
//! more efficient when the system is aware of the ordering" clause of the
//! paper's Example 1.

use crate::error::{CoreError, Result};
use crate::expr::ExtensionId;
use crate::ext::{expect_arity, get_usize, sorted_range, type_err, ExecContext, Extension};
use crate::types::MoaType;
use crate::value::Value;

/// The LIST extension.
pub struct ListExt;

const OPS: &[&str] = &[
    "select",
    "select_ordered",
    "sort",
    "topn",
    "firstn",
    "nth",
    "length",
    "sum",
    "concat",
    "reverse",
    "projecttobag",
];

fn get_list<'a>(v: &'a Value, op: &str) -> Result<&'a [Value]> {
    v.as_list()
        .ok_or_else(|| type_err(format!("LIST.{op} expects a LIST argument, got {v}")))
}

impl Extension for ListExt {
    fn id(&self) -> ExtensionId {
        ExtensionId::List
    }

    fn ops(&self) -> &'static [&'static str] {
        OPS
    }

    fn type_check(&self, op: &str, args: &[MoaType]) -> Result<MoaType> {
        let list_elem = |t: &MoaType| -> Result<MoaType> {
            match t {
                MoaType::List(e) => Ok((**e).clone()),
                MoaType::Any => Ok(MoaType::Any),
                other => Err(type_err(format!("LIST.{op}: expected LIST, got {other}"))),
            }
        };
        match op {
            "select" | "select_ordered" => {
                expect_arity(self.id(), op, args.len(), 3)?;
                let e = list_elem(&args[0])?;
                if !args[1].compatible(&e) || !args[2].compatible(&e) {
                    return Err(type_err(format!(
                        "LIST.{op}: bounds {} / {} incompatible with element type {e}",
                        args[1], args[2]
                    )));
                }
                Ok(MoaType::List(Box::new(e)))
            }
            "sort" | "reverse" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                Ok(MoaType::List(Box::new(list_elem(&args[0])?)))
            }
            "topn" | "firstn" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                if !args[1].compatible(&MoaType::Int) {
                    return Err(type_err(format!("LIST.{op}: n must be INT")));
                }
                Ok(MoaType::List(Box::new(list_elem(&args[0])?)))
            }
            "nth" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                if !args[1].compatible(&MoaType::Int) {
                    return Err(type_err("LIST.nth: index must be INT".to_string()));
                }
                list_elem(&args[0])
            }
            "length" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                list_elem(&args[0])?;
                Ok(MoaType::Int)
            }
            "sum" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let e = list_elem(&args[0])?;
                match e {
                    MoaType::Int => Ok(MoaType::Int),
                    MoaType::Float => Ok(MoaType::Float),
                    MoaType::Any => Ok(MoaType::Any),
                    other => Err(type_err(format!("LIST.sum: non-numeric elements {other}"))),
                }
            }
            "concat" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let a = list_elem(&args[0])?;
                let b = list_elem(&args[1])?;
                if !a.compatible(&b) {
                    return Err(type_err(format!(
                        "LIST.concat: element types {a} and {b} differ"
                    )));
                }
                Ok(MoaType::List(Box::new(a)))
            }
            "projecttobag" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                Ok(MoaType::Bag(Box::new(list_elem(&args[0])?)))
            }
            _ => Err(CoreError::UnknownOp {
                ext: self.id(),
                op: op.to_owned(),
            }),
        }
    }

    fn evaluate(&self, op: &str, args: &[Value], ctx: &mut ExecContext) -> Result<Value> {
        match op {
            "select" => {
                expect_arity(self.id(), op, args.len(), 3)?;
                let items = get_list(&args[0], op)?;
                ctx.work(items.len() as u64);
                ctx.note(format!("LIST.select: scan over {} elements", items.len()));
                let out: Vec<Value> = items
                    .iter()
                    .filter(|v| {
                        v.total_cmp(&args[1]) != std::cmp::Ordering::Less
                            && v.total_cmp(&args[2]) != std::cmp::Ordering::Greater
                    })
                    .cloned()
                    .collect();
                Ok(Value::List(out))
            }
            "select_ordered" => {
                expect_arity(self.id(), op, args.len(), 3)?;
                let items = get_list(&args[0], op)?;
                // Physical precondition: ascending order (proven by the
                // optimizer; verified only in debug builds to keep the
                // honest O(log n) cost).
                debug_assert!(args[0].is_sorted_asc(), "select_ordered on unsorted input");
                let mut work = 0u64;
                let (s, e) = sorted_range(items, &args[1], &args[2], &mut work);
                ctx.work(work + (e - s) as u64);
                ctx.note(format!(
                    "LIST.select_ordered: binary search, {} comparisons",
                    work
                ));
                Ok(Value::List(items[s..e].to_vec()))
            }
            "sort" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_list(&args[0], op)?;
                let n = items.len() as u64;
                ctx.work(n.saturating_mul((64 - n.leading_zeros() as u64).max(1)));
                let mut out = items.to_vec();
                out.sort_by(Value::total_cmp);
                Ok(Value::List(out))
            }
            "topn" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let items = get_list(&args[0], op)?;
                let n = get_usize(&args[1], "n")?;
                ctx.work(items.len() as u64);
                ctx.note(format!(
                    "LIST.topn: bounded heap of {n} over {} elements",
                    items.len()
                ));
                // Keep the n largest, output descending; ties by position.
                let mut idx: Vec<usize> = (0..items.len()).collect();
                idx.sort_by(|&a, &b| items[b].total_cmp(&items[a]).then(a.cmp(&b)));
                idx.truncate(n);
                Ok(Value::List(
                    idx.into_iter().map(|i| items[i].clone()).collect(),
                ))
            }
            "firstn" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let items = get_list(&args[0], op)?;
                let n = get_usize(&args[1], "n")?.min(items.len());
                ctx.work(n as u64);
                Ok(Value::List(items[..n].to_vec()))
            }
            "nth" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let items = get_list(&args[0], op)?;
                let i = get_usize(&args[1], "index")?;
                ctx.work(1);
                items
                    .get(i)
                    .cloned()
                    .ok_or_else(|| CoreError::Runtime(format!("LIST.nth: index {i} out of range")))
            }
            "length" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_list(&args[0], op)?;
                ctx.work(1);
                Ok(Value::Int(items.len() as i64))
            }
            "sum" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_list(&args[0], op)?;
                ctx.work(items.len() as u64);
                sum_numeric(items)
            }
            "concat" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let a = get_list(&args[0], op)?;
                let b = get_list(&args[1], op)?;
                ctx.work((a.len() + b.len()) as u64);
                let mut out = a.to_vec();
                out.extend_from_slice(b);
                Ok(Value::List(out))
            }
            "reverse" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_list(&args[0], op)?;
                ctx.work(items.len() as u64);
                Ok(Value::List(items.iter().rev().cloned().collect()))
            }
            "projecttobag" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let items = get_list(&args[0], op)?;
                ctx.work(items.len() as u64);
                Ok(Value::bag(items.to_vec()))
            }
            _ => Err(CoreError::UnknownOp {
                ext: self.id(),
                op: op.to_owned(),
            }),
        }
    }
}

pub(crate) fn sum_numeric(items: &[Value]) -> Result<Value> {
    let mut int_sum = 0i64;
    let mut float_sum = 0.0f64;
    let mut any_float = false;
    for v in items {
        match v {
            Value::Int(i) => int_sum += i,
            Value::Float(f) => {
                any_float = true;
                float_sum += f;
            }
            other => {
                return Err(type_err(format!("sum over non-numeric element {other}")));
            }
        }
    }
    if any_float {
        Ok(Value::Float(float_sum + int_sum as f64))
    } else {
        Ok(Value::Int(int_sum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(op: &str, args: &[Value]) -> Result<Value> {
        let mut ctx = ExecContext::new();
        ListExt.evaluate(op, args, &mut ctx)
    }

    #[test]
    fn select_matches_papers_example() {
        // select([1,2,3,4,4,5], 2, 4) = [2,3,4,4]
        let l = Value::int_list([1, 2, 3, 4, 4, 5]);
        let out = eval("select", &[l, Value::Int(2), Value::Int(4)]).unwrap();
        assert_eq!(out, Value::int_list([2, 3, 4, 4]));
    }

    #[test]
    fn select_ordered_agrees_with_select() {
        let l = Value::int_list([1, 2, 3, 4, 4, 5]);
        let a = eval("select", &[l.clone(), Value::Int(2), Value::Int(4)]).unwrap();
        let b = eval("select_ordered", &[l, Value::Int(2), Value::Int(4)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn select_ordered_is_cheaper() {
        let big: Vec<Value> = (0..10_000).map(Value::Int).collect();
        let l = Value::List(big);
        let mut ctx_scan = ExecContext::new();
        ListExt
            .evaluate(
                "select",
                &[l.clone(), Value::Int(100), Value::Int(110)],
                &mut ctx_scan,
            )
            .unwrap();
        let mut ctx_bin = ExecContext::new();
        ListExt
            .evaluate(
                "select_ordered",
                &[l, Value::Int(100), Value::Int(110)],
                &mut ctx_bin,
            )
            .unwrap();
        assert!(
            ctx_bin.elements_processed * 10 < ctx_scan.elements_processed,
            "binary {} vs scan {}",
            ctx_bin.elements_processed,
            ctx_scan.elements_processed
        );
    }

    #[test]
    fn projecttobag_forgets_order() {
        // projecttobag([1,2,3,4,4,5]) = {1,2,3,4,4,5} (bag with dup)
        let l = Value::int_list([3, 1, 2]);
        let out = eval("projecttobag", &[l]).unwrap();
        assert_eq!(
            out,
            Value::bag(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn topn_descending_and_firstn_prefix() {
        let l = Value::int_list([5, 1, 9, 3, 9]);
        assert_eq!(
            eval("topn", &[l.clone(), Value::Int(3)]).unwrap(),
            Value::int_list([9, 9, 5])
        );
        assert_eq!(
            eval("firstn", &[l, Value::Int(2)]).unwrap(),
            Value::int_list([5, 1])
        );
    }

    #[test]
    fn sort_and_reverse() {
        let l = Value::int_list([3, 1, 2]);
        assert_eq!(
            eval("sort", std::slice::from_ref(&l)).unwrap(),
            Value::int_list([1, 2, 3])
        );
        assert_eq!(eval("reverse", &[l]).unwrap(), Value::int_list([2, 1, 3]));
    }

    #[test]
    fn length_sum_nth_concat() {
        let l = Value::int_list([4, 5, 6]);
        assert_eq!(
            eval("length", std::slice::from_ref(&l)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval("sum", std::slice::from_ref(&l)).unwrap(),
            Value::Int(15)
        );
        assert_eq!(
            eval("nth", &[l.clone(), Value::Int(1)]).unwrap(),
            Value::Int(5)
        );
        assert!(eval("nth", &[l.clone(), Value::Int(9)]).is_err());
        assert_eq!(
            eval("concat", &[l.clone(), Value::int_list([7])]).unwrap(),
            Value::int_list([4, 5, 6, 7])
        );
    }

    #[test]
    fn sum_mixes_numeric_types() {
        let l = Value::List(vec![Value::Int(1), Value::Float(0.5)]);
        assert_eq!(eval("sum", &[l]).unwrap(), Value::Float(1.5));
        let bad = Value::List(vec![Value::Bool(true)]);
        assert!(eval("sum", &[bad]).is_err());
    }

    #[test]
    fn wrong_argument_types_rejected() {
        assert!(eval("select", &[Value::Int(1), Value::Int(0), Value::Int(2)]).is_err());
        assert!(eval("length", &[Value::bag(vec![])]).is_err());
        assert!(eval("topn", &[Value::int_list([1]), Value::Bool(true)]).is_err());
        assert!(eval("topn", &[Value::int_list([1]), Value::Int(-2)]).is_err());
    }

    #[test]
    fn unknown_op_rejected() {
        assert!(matches!(
            eval("frobnicate", &[]),
            Err(CoreError::UnknownOp { .. })
        ));
    }

    #[test]
    fn type_check_select_and_projecttobag() {
        let li = MoaType::List(Box::new(MoaType::Int));
        let t = ListExt
            .type_check("select", &[li.clone(), MoaType::Int, MoaType::Int])
            .unwrap();
        assert_eq!(t, li);
        assert!(ListExt
            .type_check("select", &[li.clone(), MoaType::Str, MoaType::Int])
            .is_err());
        let t = ListExt.type_check("projecttobag", &[li]).unwrap();
        assert_eq!(t, MoaType::Bag(Box::new(MoaType::Int)));
        assert!(ListExt
            .type_check("select", &[MoaType::Int, MoaType::Int, MoaType::Int])
            .is_err());
    }

    #[test]
    fn empty_list_edge_cases() {
        let empty = Value::List(vec![]);
        assert_eq!(
            eval("select", &[empty.clone(), Value::Int(0), Value::Int(9)]).unwrap(),
            Value::List(vec![])
        );
        assert_eq!(
            eval("topn", &[empty.clone(), Value::Int(5)]).unwrap(),
            Value::List(vec![])
        );
        assert_eq!(eval("length", &[empty]).unwrap(), Value::Int(0));
    }
}
