//! The extension registry (ADTs / data blades, per the paper).
//!
//! Each structure of the algebra is owned by an [`Extension`] that defines
//! its operator set: type checking and evaluation. Operators count the
//! elements they touch into the [`ExecContext`], so experiments can compare
//! *work* across plans; physical operator variants (e.g. `select_ordered`)
//! are ordinary operators that the intra-object optimizer substitutes when
//! their preconditions are proven.

pub mod bag;
pub mod list;
pub mod mmrank;
pub mod set;
pub mod tuple;

use std::collections::HashMap;
use std::sync::Arc;

use moa_ir::{
    EngineSet, ExecReport, FragmentedIndex, PhysicalPlan, RankingModel, Strategy, SwitchPolicy,
};
use moa_obs::PhaseAgg;
use parking_lot::Mutex;

use crate::cost::IrCostInfo;
use crate::error::{CoreError, Result};
use crate::expr::ExtensionId;
use crate::planner::{PlanDecision, Planner};
use crate::types::MoaType;
use crate::value::Value;

/// How the runtime selects the physical retrieval operator per query.
#[derive(Debug)]
pub enum RetrievalMode {
    /// Always execute one fixed physical plan (the pre-planner behavior).
    Fixed(PhysicalPlan),
    /// Let the cost-driven planner pick per query, calibrating its
    /// weights from the measured execution counters as it goes. Boxed:
    /// the planner carries its plan memo, which dwarfs the fixed-plan
    /// variant.
    Planned(Box<Planner>),
}

/// The outcome of one ranked retrieval through the runtime.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct RankOutcome {
    /// Top `(doc, score)` pairs, best first.
    pub top: Vec<(u32, f64)>,
    /// Unified work counter (elements inspected).
    pub postings_scanned: usize,
    /// The physical operator that executed the query.
    pub operator: &'static str,
    /// The planner's cost estimate for the chosen operator (`None` in
    /// fixed mode).
    pub est_cost: Option<f64>,
}

/// Shared multimedia-retrieval runtime for the MMRANK extension: the
/// unified engine set plus either a fixed physical plan or the
/// cost-driven planner that picks one per query.
#[derive(Debug)]
pub struct IrRuntime {
    frag: Arc<FragmentedIndex>,
    model: RankingModel,
    policy: SwitchPolicy,
    inner: Mutex<RuntimeInner>,
}

#[derive(Debug)]
struct RuntimeInner {
    engines: EngineSet,
    mode: RetrievalMode,
}

impl IrRuntime {
    /// Create a runtime that always executes one fragmented strategy
    /// (backwards-compatible constructor).
    pub fn new(
        frag: Arc<FragmentedIndex>,
        model: RankingModel,
        policy: SwitchPolicy,
        strategy: Strategy,
    ) -> IrRuntime {
        IrRuntime::fixed(frag, model, policy, PhysicalPlan::Fragmented(strategy))
    }

    /// Create a runtime pinned to one physical plan.
    pub fn fixed(
        frag: Arc<FragmentedIndex>,
        model: RankingModel,
        policy: SwitchPolicy,
        plan: PhysicalPlan,
    ) -> IrRuntime {
        IrRuntime::with_mode(frag, model, policy, RetrievalMode::Fixed(plan))
    }

    /// Create a runtime whose physical operator is chosen per query by
    /// the cost-driven planner.
    pub fn planned(
        frag: Arc<FragmentedIndex>,
        model: RankingModel,
        policy: SwitchPolicy,
        planner: Planner,
    ) -> IrRuntime {
        IrRuntime::with_mode(
            frag,
            model,
            policy,
            RetrievalMode::Planned(Box::new(planner)),
        )
    }

    fn with_mode(
        frag: Arc<FragmentedIndex>,
        model: RankingModel,
        policy: SwitchPolicy,
        mode: RetrievalMode,
    ) -> IrRuntime {
        let engines = EngineSet::new(Arc::clone(&frag), model, policy);
        IrRuntime {
            frag,
            model,
            policy,
            inner: Mutex::new(RuntimeInner { engines, mode }),
        }
    }

    /// The fragmented index.
    pub fn fragments(&self) -> &FragmentedIndex {
        &self.frag
    }

    /// Number of documents in the collection.
    pub fn num_docs(&self) -> usize {
        self.frag.index().num_docs()
    }

    /// The ranking model in use.
    pub fn model(&self) -> RankingModel {
        self.model
    }

    /// The physical plan a fixed-mode runtime executes (`None` when the
    /// planner decides per query).
    pub fn fixed_plan(&self) -> Option<PhysicalPlan> {
        match &self.inner.lock().mode {
            RetrievalMode::Fixed(p) => Some(*p),
            RetrievalMode::Planned(_) => None,
        }
    }

    /// Catalog-level cost information for the algebra estimator: the
    /// fragment volumes plus a postings-per-query prior matched to the
    /// runtime's mode.
    pub fn cost_info(&self) -> IrCostInfo {
        let a = self.frag.fragment_a().volume() as f64;
        let b = self.frag.fragment_b().volume() as f64;
        let prior = match self.fixed_plan() {
            Some(PhysicalPlan::Fragmented(Strategy::FullScan)) => a + b,
            Some(PhysicalPlan::Fragmented(Strategy::AOnly { .. })) => a,
            // The switch strategy scans A always and B sometimes; cost
            // with the pessimistic full volume halved as a coarse prior.
            Some(PhysicalPlan::Fragmented(Strategy::Switch { .. })) => a + 0.5 * b,
            // Cursor/accumulator paths touch only the query terms' runs;
            // without a query in hand, half the volume is the prior.
            Some(PhysicalPlan::PrunedDaat)
            | Some(PhysicalPlan::ExhaustiveDaat)
            | Some(PhysicalPlan::SetAtATime)
            | None => 0.5 * (a + b),
        };
        IrCostInfo::from_catalog(&self.frag, prior)
    }

    /// Enumerate and price the physical alternatives for one query — the
    /// EXPLAIN hook. In planned mode the session's planner prices; in
    /// fixed mode a default planner prices the same alternatives so the
    /// pinned operator can be compared against them.
    pub fn plan_for(&self, terms: &[u32], n: usize) -> Result<PlanDecision> {
        match &self.inner.lock().mode {
            RetrievalMode::Planned(planner) => {
                planner.plan(terms, n, &self.frag, self.model, self.policy)
            }
            RetrievalMode::Fixed(_) => {
                Planner::default().plan(terms, n, &self.frag, self.model, self.policy)
            }
        }
    }

    /// Execute one specific physical plan for `terms`, returning the
    /// full report, the engine's per-stage clocks, and the wall time —
    /// the EXPLAIN ANALYZE hook. Measurement only: the planner is *not*
    /// calibrated here, so analyzing every alternative side by side does
    /// not skew the learned weights toward plans the planner would never
    /// have chosen. The answer is bit-identical to [`IrRuntime::rank`]
    /// executing the same plan — the stage clocks are reads of
    /// already-running wall time, never a change to the evaluation.
    pub fn execute_plan_analyzed(
        &self,
        plan: PhysicalPlan,
        terms: &[u32],
        n: usize,
    ) -> Result<(ExecReport, PhaseAgg, std::time::Duration)> {
        let mut guard = self.inner.lock();
        let t0 = std::time::Instant::now();
        let report = guard
            .engines
            .execute(plan, terms, n)
            .map_err(CoreError::Ir)?;
        let wall = t0.elapsed();
        let phases = guard.engines.last_phases();
        Ok((report, phases, wall))
    }

    /// Rank the collection for `terms`, returning the top `n` with the
    /// executing operator's name and (in planned mode) its cost estimate.
    /// Planned executions feed their measured counters back into the
    /// planner's weights (calibration).
    pub fn rank(&self, terms: &[u32], n: usize) -> Result<RankOutcome> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        match &mut inner.mode {
            RetrievalMode::Fixed(plan) => {
                let plan = *plan;
                let report = inner
                    .engines
                    .execute(plan, terms, n)
                    .map_err(CoreError::Ir)?;
                Ok(RankOutcome {
                    top: report.top,
                    postings_scanned: report.postings_scanned,
                    operator: plan.name(),
                    est_cost: None,
                })
            }
            RetrievalMode::Planned(planner) => {
                let decision = planner.plan(terms, n, &self.frag, self.model, self.policy)?;
                let plan = decision.chosen;
                let report = inner
                    .engines
                    .execute(plan, terms, n)
                    .map_err(CoreError::Ir)?;
                planner.observe(plan, &decision.profile, &report);
                Ok(RankOutcome {
                    top: report.top,
                    postings_scanned: report.postings_scanned,
                    operator: plan.name(),
                    est_cost: Some(decision.chosen_alternative().cost),
                })
            }
        }
    }
}

/// Mutable evaluation context: work counters, physical notes, and the
/// optional MM runtime.
#[derive(Default)]
pub struct ExecContext {
    /// Elements touched by operators (the abstract work measure).
    pub elements_processed: u64,
    /// Physical decisions taken during evaluation (for EXPLAIN output).
    pub notes: Vec<String>,
    /// The MM retrieval runtime, when attached.
    pub ir: Option<Arc<IrRuntime>>,
}

impl ExecContext {
    /// A context without an IR runtime.
    pub fn new() -> ExecContext {
        ExecContext::default()
    }

    /// A context with an IR runtime attached.
    pub fn with_ir(ir: Arc<IrRuntime>) -> ExecContext {
        ExecContext {
            ir: Some(ir),
            ..ExecContext::default()
        }
    }

    /// Record `n` units of work.
    pub fn work(&mut self, n: u64) {
        self.elements_processed += n;
    }

    /// Record a physical note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

/// An algebra extension: a named structure with its operator set.
pub trait Extension: Send + Sync {
    /// The extension's identity.
    fn id(&self) -> ExtensionId;
    /// The operator names this extension defines (logical and physical).
    fn ops(&self) -> &'static [&'static str];
    /// Infer the result type of `op` applied to `args`.
    fn type_check(&self, op: &str, args: &[MoaType]) -> Result<MoaType>;
    /// Evaluate `op` over concrete argument values.
    fn evaluate(&self, op: &str, args: &[Value], ctx: &mut ExecContext) -> Result<Value>;
}

/// The extension registry: one implementation per [`ExtensionId`].
pub struct Registry {
    exts: HashMap<ExtensionId, Box<dyn Extension>>,
}

impl Registry {
    /// The standard registry with all five shipped extensions.
    pub fn standard() -> Registry {
        let mut exts: HashMap<ExtensionId, Box<dyn Extension>> = HashMap::new();
        exts.insert(ExtensionId::List, Box::new(list::ListExt));
        exts.insert(ExtensionId::Bag, Box::new(bag::BagExt));
        exts.insert(ExtensionId::Set, Box::new(set::SetExt));
        exts.insert(ExtensionId::Tuple, Box::new(tuple::TupleExt));
        exts.insert(ExtensionId::MmRank, Box::new(mmrank::MmRankExt));
        Registry { exts }
    }

    /// Look up an extension.
    pub fn get(&self, id: ExtensionId) -> Result<&dyn Extension> {
        self.exts
            .get(&id)
            .map(|b| b.as_ref())
            .ok_or_else(|| CoreError::Runtime(format!("extension {id:?} not registered")))
    }

    /// All registered extension ids.
    pub fn ids(&self) -> Vec<ExtensionId> {
        let mut v: Vec<ExtensionId> = self.exts.keys().copied().collect();
        v.sort_by_key(|id| format!("{id:?}"));
        v
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

// ---- shared argument helpers used by the extension implementations ----

pub(crate) fn expect_arity(
    ext: ExtensionId,
    op: &str,
    args_len: usize,
    expected: usize,
) -> Result<()> {
    if args_len != expected {
        return Err(CoreError::Arity {
            ext,
            op: op.to_owned(),
            expected,
            found: args_len,
        });
    }
    Ok(())
}

pub(crate) fn type_err(msg: impl Into<String>) -> CoreError {
    CoreError::Type(msg.into())
}

pub(crate) fn get_int(v: &Value, what: &str) -> Result<i64> {
    v.as_int()
        .ok_or_else(|| type_err(format!("{what} must be INT, got {v}")))
}

pub(crate) fn get_usize(v: &Value, what: &str) -> Result<usize> {
    let i = get_int(v, what)?;
    usize::try_from(i).map_err(|_| type_err(format!("{what} must be non-negative, got {i}")))
}

/// Binary-search the `[lo, hi]` range inside a slice sorted ascending by
/// `Value::total_cmp`, counting the comparisons into `work`.
pub(crate) fn sorted_range(
    items: &[Value],
    lo: &Value,
    hi: &Value,
    work: &mut u64,
) -> (usize, usize) {
    let mut cmps = 0u64;
    let start = partition_by(items, |v| {
        cmps += 1;
        v.total_cmp(lo) == std::cmp::Ordering::Less
    });
    let end = partition_by(items, |v| {
        cmps += 1;
        v.total_cmp(hi) != std::cmp::Ordering::Greater
    });
    *work += cmps;
    (start, end.max(start))
}

fn partition_by(items: &[Value], mut pred: impl FnMut(&Value) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, items.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(&items[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_extensions() {
        let r = Registry::standard();
        for id in [
            ExtensionId::List,
            ExtensionId::Bag,
            ExtensionId::Set,
            ExtensionId::Tuple,
            ExtensionId::MmRank,
        ] {
            let ext = r.get(id).unwrap();
            assert_eq!(ext.id(), id);
            assert!(!ext.ops().is_empty());
        }
        assert_eq!(r.ids().len(), 5);
    }

    #[test]
    fn context_counts_work_and_notes() {
        let mut ctx = ExecContext::new();
        ctx.work(10);
        ctx.work(5);
        ctx.note("x");
        assert_eq!(ctx.elements_processed, 15);
        assert_eq!(ctx.notes, vec!["x".to_string()]);
        assert!(ctx.ir.is_none());
    }

    #[test]
    fn arity_helper() {
        assert!(expect_arity(ExtensionId::List, "select", 3, 3).is_ok());
        let e = expect_arity(ExtensionId::List, "select", 1, 3).unwrap_err();
        assert!(matches!(
            e,
            CoreError::Arity {
                expected: 3,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn int_helpers() {
        assert_eq!(get_int(&Value::Int(5), "n").unwrap(), 5);
        assert!(get_int(&Value::Bool(true), "n").is_err());
        assert_eq!(get_usize(&Value::Int(5), "n").unwrap(), 5);
        assert!(get_usize(&Value::Int(-1), "n").is_err());
    }

    #[test]
    fn sorted_range_finds_bounds() {
        let items: Vec<Value> = [1, 3, 3, 5, 9].into_iter().map(Value::Int).collect();
        let mut work = 0u64;
        let (s, e) = sorted_range(&items, &Value::Int(3), &Value::Int(5), &mut work);
        assert_eq!((s, e), (1, 4));
        assert!(work > 0 && work < 16, "work={work}");
        let (s, e) = sorted_range(&items, &Value::Int(6), &Value::Int(8), &mut work);
        assert_eq!(s, e);
    }
}
