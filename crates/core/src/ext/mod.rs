//! The extension registry (ADTs / data blades, per the paper).
//!
//! Each structure of the algebra is owned by an [`Extension`] that defines
//! its operator set: type checking and evaluation. Operators count the
//! elements they touch into the [`ExecContext`], so experiments can compare
//! *work* across plans; physical operator variants (e.g. `select_ordered`)
//! are ordinary operators that the intra-object optimizer substitutes when
//! their preconditions are proven.

pub mod bag;
pub mod list;
pub mod mmrank;
pub mod set;
pub mod tuple;

use std::collections::HashMap;
use std::sync::Arc;

use moa_ir::{FragSearcher, FragmentedIndex, RankingModel, Strategy, SwitchPolicy};
use parking_lot::Mutex;

use crate::error::{CoreError, Result};
use crate::expr::ExtensionId;
use crate::types::MoaType;
use crate::value::Value;

/// Shared multimedia-retrieval runtime for the MMRANK extension: a
/// fragmented index plus the evaluation strategy the physical plan selected.
#[derive(Debug)]
pub struct IrRuntime {
    frag: Arc<FragmentedIndex>,
    strategy: Strategy,
    searcher: Mutex<FragSearcher>,
}

impl IrRuntime {
    /// Create a runtime over a fragmented index.
    pub fn new(
        frag: Arc<FragmentedIndex>,
        model: RankingModel,
        policy: SwitchPolicy,
        strategy: Strategy,
    ) -> IrRuntime {
        let searcher = FragSearcher::new(Arc::clone(&frag), model, policy);
        IrRuntime {
            frag,
            strategy,
            searcher: Mutex::new(searcher),
        }
    }

    /// The fragmented index.
    pub fn fragments(&self) -> &FragmentedIndex {
        &self.frag
    }

    /// Number of documents in the collection.
    pub fn num_docs(&self) -> usize {
        self.frag.index().num_docs()
    }

    /// The configured evaluation strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Rank the collection for `terms`, returning the top `n` and the
    /// number of postings scanned.
    pub fn rank(&self, terms: &[u32], n: usize) -> Result<(Vec<(u32, f64)>, usize)> {
        let report = self
            .searcher
            .lock()
            .search(terms, n, self.strategy)
            .map_err(CoreError::Ir)?;
        Ok((report.top, report.postings_scanned))
    }
}

/// Mutable evaluation context: work counters, physical notes, and the
/// optional MM runtime.
#[derive(Default)]
pub struct ExecContext {
    /// Elements touched by operators (the abstract work measure).
    pub elements_processed: u64,
    /// Physical decisions taken during evaluation (for EXPLAIN output).
    pub notes: Vec<String>,
    /// The MM retrieval runtime, when attached.
    pub ir: Option<Arc<IrRuntime>>,
}

impl ExecContext {
    /// A context without an IR runtime.
    pub fn new() -> ExecContext {
        ExecContext::default()
    }

    /// A context with an IR runtime attached.
    pub fn with_ir(ir: Arc<IrRuntime>) -> ExecContext {
        ExecContext {
            ir: Some(ir),
            ..ExecContext::default()
        }
    }

    /// Record `n` units of work.
    pub fn work(&mut self, n: u64) {
        self.elements_processed += n;
    }

    /// Record a physical note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

/// An algebra extension: a named structure with its operator set.
pub trait Extension: Send + Sync {
    /// The extension's identity.
    fn id(&self) -> ExtensionId;
    /// The operator names this extension defines (logical and physical).
    fn ops(&self) -> &'static [&'static str];
    /// Infer the result type of `op` applied to `args`.
    fn type_check(&self, op: &str, args: &[MoaType]) -> Result<MoaType>;
    /// Evaluate `op` over concrete argument values.
    fn evaluate(&self, op: &str, args: &[Value], ctx: &mut ExecContext) -> Result<Value>;
}

/// The extension registry: one implementation per [`ExtensionId`].
pub struct Registry {
    exts: HashMap<ExtensionId, Box<dyn Extension>>,
}

impl Registry {
    /// The standard registry with all five shipped extensions.
    pub fn standard() -> Registry {
        let mut exts: HashMap<ExtensionId, Box<dyn Extension>> = HashMap::new();
        exts.insert(ExtensionId::List, Box::new(list::ListExt));
        exts.insert(ExtensionId::Bag, Box::new(bag::BagExt));
        exts.insert(ExtensionId::Set, Box::new(set::SetExt));
        exts.insert(ExtensionId::Tuple, Box::new(tuple::TupleExt));
        exts.insert(ExtensionId::MmRank, Box::new(mmrank::MmRankExt));
        Registry { exts }
    }

    /// Look up an extension.
    pub fn get(&self, id: ExtensionId) -> Result<&dyn Extension> {
        self.exts
            .get(&id)
            .map(|b| b.as_ref())
            .ok_or_else(|| CoreError::Runtime(format!("extension {id:?} not registered")))
    }

    /// All registered extension ids.
    pub fn ids(&self) -> Vec<ExtensionId> {
        let mut v: Vec<ExtensionId> = self.exts.keys().copied().collect();
        v.sort_by_key(|id| format!("{id:?}"));
        v
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

// ---- shared argument helpers used by the extension implementations ----

pub(crate) fn expect_arity(
    ext: ExtensionId,
    op: &str,
    args_len: usize,
    expected: usize,
) -> Result<()> {
    if args_len != expected {
        return Err(CoreError::Arity {
            ext,
            op: op.to_owned(),
            expected,
            found: args_len,
        });
    }
    Ok(())
}

pub(crate) fn type_err(msg: impl Into<String>) -> CoreError {
    CoreError::Type(msg.into())
}

pub(crate) fn get_int(v: &Value, what: &str) -> Result<i64> {
    v.as_int()
        .ok_or_else(|| type_err(format!("{what} must be INT, got {v}")))
}

pub(crate) fn get_usize(v: &Value, what: &str) -> Result<usize> {
    let i = get_int(v, what)?;
    usize::try_from(i).map_err(|_| type_err(format!("{what} must be non-negative, got {i}")))
}

/// Binary-search the `[lo, hi]` range inside a slice sorted ascending by
/// `Value::total_cmp`, counting the comparisons into `work`.
pub(crate) fn sorted_range(
    items: &[Value],
    lo: &Value,
    hi: &Value,
    work: &mut u64,
) -> (usize, usize) {
    let mut cmps = 0u64;
    let start = partition_by(items, |v| {
        cmps += 1;
        v.total_cmp(lo) == std::cmp::Ordering::Less
    });
    let end = partition_by(items, |v| {
        cmps += 1;
        v.total_cmp(hi) != std::cmp::Ordering::Greater
    });
    *work += cmps;
    (start, end.max(start))
}

fn partition_by(items: &[Value], mut pred: impl FnMut(&Value) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, items.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(&items[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_extensions() {
        let r = Registry::standard();
        for id in [
            ExtensionId::List,
            ExtensionId::Bag,
            ExtensionId::Set,
            ExtensionId::Tuple,
            ExtensionId::MmRank,
        ] {
            let ext = r.get(id).unwrap();
            assert_eq!(ext.id(), id);
            assert!(!ext.ops().is_empty());
        }
        assert_eq!(r.ids().len(), 5);
    }

    #[test]
    fn context_counts_work_and_notes() {
        let mut ctx = ExecContext::new();
        ctx.work(10);
        ctx.work(5);
        ctx.note("x");
        assert_eq!(ctx.elements_processed, 15);
        assert_eq!(ctx.notes, vec!["x".to_string()]);
        assert!(ctx.ir.is_none());
    }

    #[test]
    fn arity_helper() {
        assert!(expect_arity(ExtensionId::List, "select", 3, 3).is_ok());
        let e = expect_arity(ExtensionId::List, "select", 1, 3).unwrap_err();
        assert!(matches!(
            e,
            CoreError::Arity {
                expected: 3,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn int_helpers() {
        assert_eq!(get_int(&Value::Int(5), "n").unwrap(), 5);
        assert!(get_int(&Value::Bool(true), "n").is_err());
        assert_eq!(get_usize(&Value::Int(5), "n").unwrap(), 5);
        assert!(get_usize(&Value::Int(-1), "n").is_err());
    }

    #[test]
    fn sorted_range_finds_bounds() {
        let items: Vec<Value> = [1, 3, 3, 5, 9].into_iter().map(Value::Int).collect();
        let mut work = 0u64;
        let (s, e) = sorted_range(&items, &Value::Int(3), &Value::Int(5), &mut work);
        assert_eq!((s, e), (1, 4));
        assert!(work > 0 && work < 16, "work={work}");
        let (s, e) = sorted_range(&items, &Value::Int(6), &Value::Int(8), &mut work);
        assert_eq!(s, e);
    }
}
