//! The MMRANK extension: content ranking as first-class algebra operators.
//!
//! "Ranking a list of documents is the core business of content based
//! retrieval DBMSs" — this extension exposes it to the algebra:
//!
//! * `rank(query)` materializes the full ranked list for a term-id query,
//! * `topn(ranked, n)` / `cutoff(ranked, t)` shrink a ranked list,
//! * `rank_topn(query, n)` is the *fused physical operator* the intra-object
//!   optimizer substitutes for `topn(rank(q), n)` — it pushes the bound into
//!   retrieval, avoiding materializing a collection-sized ranking,
//! * `projecttolist(ranked)` crosses back into LIST (rank order preserved),
//!   where the inter-object optimizer can reason about its ordering.

use crate::error::{CoreError, Result};
use crate::expr::ExtensionId;
use crate::ext::{expect_arity, get_usize, type_err, ExecContext, Extension};
use crate::types::MoaType;
use crate::value::Value;

/// The MMRANK extension.
pub struct MmRankExt;

const OPS: &[&str] = &[
    "rank",
    "rank_topn",
    "topn",
    "cutoff",
    "count",
    "projecttolist",
    "scores",
];

fn get_ranked<'a>(v: &'a Value, op: &str) -> Result<&'a [(u32, f64)]> {
    v.as_ranked()
        .ok_or_else(|| type_err(format!("MMRANK.{op} expects a RANKED argument, got {v}")))
}

fn get_query_terms(v: &Value, op: &str) -> Result<Vec<u32>> {
    let items = v
        .as_list()
        .ok_or_else(|| type_err(format!("MMRANK.{op} expects a LIST<INT> query, got {v}")))?;
    items
        .iter()
        .map(|t| {
            t.as_int()
                .and_then(|i| u32::try_from(i).ok())
                .ok_or_else(|| type_err(format!("MMRANK.{op}: bad term id {t}")))
        })
        .collect()
}

impl Extension for MmRankExt {
    fn id(&self) -> ExtensionId {
        ExtensionId::MmRank
    }

    fn ops(&self) -> &'static [&'static str] {
        OPS
    }

    fn type_check(&self, op: &str, args: &[MoaType]) -> Result<MoaType> {
        let expect_ranked = |t: &MoaType| -> Result<()> {
            match t {
                MoaType::Ranked | MoaType::Any => Ok(()),
                other => Err(type_err(format!(
                    "MMRANK.{op}: expected RANKED, got {other}"
                ))),
            }
        };
        let expect_query = |t: &MoaType| -> Result<()> {
            match t {
                MoaType::List(e) if e.compatible(&MoaType::Int) => Ok(()),
                MoaType::Any => Ok(()),
                other => Err(type_err(format!(
                    "MMRANK.{op}: expected LIST<INT> query, got {other}"
                ))),
            }
        };
        match op {
            "rank" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                expect_query(&args[0])?;
                Ok(MoaType::Ranked)
            }
            "rank_topn" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                expect_query(&args[0])?;
                if !args[1].compatible(&MoaType::Int) {
                    return Err(type_err("MMRANK.rank_topn: n must be INT".to_string()));
                }
                Ok(MoaType::Ranked)
            }
            "topn" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                expect_ranked(&args[0])?;
                if !args[1].compatible(&MoaType::Int) {
                    return Err(type_err("MMRANK.topn: n must be INT".to_string()));
                }
                Ok(MoaType::Ranked)
            }
            "cutoff" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                expect_ranked(&args[0])?;
                if !args[1].compatible(&MoaType::Float) {
                    return Err(type_err("MMRANK.cutoff: threshold must be FLT".to_string()));
                }
                Ok(MoaType::Ranked)
            }
            "count" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                expect_ranked(&args[0])?;
                Ok(MoaType::Int)
            }
            "projecttolist" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                expect_ranked(&args[0])?;
                Ok(MoaType::List(Box::new(MoaType::Int)))
            }
            "scores" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                expect_ranked(&args[0])?;
                Ok(MoaType::List(Box::new(MoaType::Float)))
            }
            _ => Err(CoreError::UnknownOp {
                ext: self.id(),
                op: op.to_owned(),
            }),
        }
    }

    fn evaluate(&self, op: &str, args: &[Value], ctx: &mut ExecContext) -> Result<Value> {
        match op {
            "rank" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let terms = get_query_terms(&args[0], op)?;
                let ir = ctx.ir.clone().ok_or(CoreError::NoIrRuntime)?;
                let n = ir.num_docs();
                let out = ir.rank(&terms, n)?;
                ctx.work(out.postings_scanned as u64 + out.top.len() as u64);
                let est = out
                    .est_cost
                    .map(|c| format!(", est. cost {c:.0}"))
                    .unwrap_or_default();
                ctx.note(format!(
                    "MMRANK.rank via {}: {} postings scanned, {} docs materialized{est}",
                    out.operator,
                    out.postings_scanned,
                    out.top.len()
                ));
                Ok(Value::Ranked(out.top))
            }
            "rank_topn" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let terms = get_query_terms(&args[0], op)?;
                let n = get_usize(&args[1], "n")?;
                let ir = ctx.ir.clone().ok_or(CoreError::NoIrRuntime)?;
                let out = ir.rank(&terms, n)?;
                ctx.work(out.postings_scanned as u64 + out.top.len() as u64);
                let est = out
                    .est_cost
                    .map(|c| format!(", est. cost {c:.0}"))
                    .unwrap_or_default();
                ctx.note(format!(
                    "MMRANK.rank_topn via {}: fused top-{n}, {} postings scanned, {} docs materialized{est}",
                    out.operator,
                    out.postings_scanned,
                    out.top.len()
                ));
                Ok(Value::Ranked(out.top))
            }
            "topn" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let ranked = get_ranked(&args[0], op)?;
                let n = get_usize(&args[1], "n")?.min(ranked.len());
                // Ranked lists are ordered: scan-stop, not a sort.
                ctx.work(n as u64);
                ctx.note(format!("MMRANK.topn: scan-stop after {n}"));
                Ok(Value::Ranked(ranked[..n].to_vec()))
            }
            "cutoff" => {
                expect_arity(self.id(), op, args.len(), 2)?;
                let ranked = get_ranked(&args[0], op)?;
                let t = args[1]
                    .as_float()
                    .ok_or_else(|| type_err("MMRANK.cutoff: threshold must be FLT".to_string()))?;
                // Descending order: binary-search the boundary.
                let end = ranked.partition_point(|&(_, s)| s >= t);
                let cmps = (usize::BITS - ranked.len().max(1).leading_zeros()) as u64;
                ctx.work(cmps + end as u64);
                ctx.note(format!("MMRANK.cutoff: boundary at {end}"));
                Ok(Value::Ranked(ranked[..end].to_vec()))
            }
            "count" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let ranked = get_ranked(&args[0], op)?;
                ctx.work(1);
                Ok(Value::Int(ranked.len() as i64))
            }
            "projecttolist" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let ranked = get_ranked(&args[0], op)?;
                ctx.work(ranked.len() as u64);
                Ok(Value::List(
                    ranked
                        .iter()
                        .map(|&(d, _)| Value::Int(i64::from(d)))
                        .collect(),
                ))
            }
            "scores" => {
                expect_arity(self.id(), op, args.len(), 1)?;
                let ranked = get_ranked(&args[0], op)?;
                ctx.work(ranked.len() as u64);
                Ok(Value::List(
                    ranked.iter().map(|&(_, s)| Value::Float(s)).collect(),
                ))
            }
            _ => Err(CoreError::UnknownOp {
                ext: self.id(),
                op: op.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::IrRuntime;
    use moa_corpus::{Collection, CollectionConfig};
    use moa_ir::{
        FragmentSpec, FragmentedIndex, InvertedIndex, RankingModel, Strategy, SwitchPolicy,
    };
    use std::sync::Arc;

    fn runtime() -> Arc<IrRuntime> {
        let c = Collection::generate(CollectionConfig::tiny()).unwrap();
        let idx = Arc::new(InvertedIndex::from_collection(&c));
        let frag =
            Arc::new(FragmentedIndex::build(idx, FragmentSpec::VolumeFraction(0.3)).unwrap());
        Arc::new(IrRuntime::new(
            frag,
            RankingModel::default(),
            SwitchPolicy::default(),
            Strategy::FullScan,
        ))
    }

    fn query_value(rt: &IrRuntime) -> Value {
        let terms = rt.fragments().index().terms_by_df_asc();
        Value::int_list([
            i64::from(terms[terms.len() - 1]),
            i64::from(terms[terms.len() / 2]),
        ])
    }

    #[test]
    fn rank_produces_descending_ranked_list() {
        let rt = runtime();
        let mut ctx = ExecContext::with_ir(Arc::clone(&rt));
        let q = query_value(&rt);
        let out = MmRankExt.evaluate("rank", &[q], &mut ctx).unwrap();
        let ranked = out.as_ranked().unwrap();
        assert!(!ranked.is_empty());
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(ctx.elements_processed > 0);
    }

    #[test]
    fn rank_without_runtime_errors() {
        let mut ctx = ExecContext::new();
        let q = Value::int_list([1]);
        assert_eq!(
            MmRankExt.evaluate("rank", &[q], &mut ctx),
            Err(CoreError::NoIrRuntime)
        );
    }

    #[test]
    fn fused_rank_topn_matches_rank_then_topn() {
        let rt = runtime();
        let q = query_value(&rt);
        let mut ctx1 = ExecContext::with_ir(Arc::clone(&rt));
        let full = MmRankExt
            .evaluate("rank", std::slice::from_ref(&q), &mut ctx1)
            .unwrap();
        let top = MmRankExt
            .evaluate("topn", &[full, Value::Int(5)], &mut ctx1)
            .unwrap();
        let mut ctx2 = ExecContext::with_ir(Arc::clone(&rt));
        let fused = MmRankExt
            .evaluate("rank_topn", &[q, Value::Int(5)], &mut ctx2)
            .unwrap();
        assert_eq!(top, fused);
        // The fused operator avoids materializing the full ranking.
        assert!(ctx2.elements_processed < ctx1.elements_processed);
    }

    #[test]
    fn topn_truncates_and_counts_scan_stop() {
        let ranked = Value::ranked(vec![(1, 0.9), (2, 0.8), (3, 0.7)]);
        let mut ctx = ExecContext::new();
        let out = MmRankExt
            .evaluate("topn", &[ranked, Value::Int(2)], &mut ctx)
            .unwrap();
        assert_eq!(out.as_ranked().unwrap(), &[(1, 0.9), (2, 0.8)]);
        assert_eq!(ctx.elements_processed, 2);
    }

    #[test]
    fn cutoff_keeps_scores_at_or_above_threshold() {
        let ranked = Value::ranked(vec![(1, 0.9), (2, 0.5), (3, 0.2)]);
        let mut ctx = ExecContext::new();
        let out = MmRankExt
            .evaluate("cutoff", &[ranked, Value::Float(0.5)], &mut ctx)
            .unwrap();
        assert_eq!(out.as_ranked().unwrap(), &[(1, 0.9), (2, 0.5)]);
    }

    #[test]
    fn projections_preserve_rank_order() {
        let ranked = Value::ranked(vec![(9, 0.9), (4, 0.8)]);
        let mut ctx = ExecContext::new();
        let docs = MmRankExt
            .evaluate("projecttolist", std::slice::from_ref(&ranked), &mut ctx)
            .unwrap();
        assert_eq!(docs, Value::int_list([9, 4]));
        let scores = MmRankExt.evaluate("scores", &[ranked], &mut ctx).unwrap();
        assert_eq!(
            scores,
            Value::List(vec![Value::Float(0.9), Value::Float(0.8)])
        );
    }

    #[test]
    fn type_checks() {
        let q = MoaType::List(Box::new(MoaType::Int));
        assert_eq!(
            MmRankExt
                .type_check("rank", std::slice::from_ref(&q))
                .unwrap(),
            MoaType::Ranked
        );
        assert_eq!(
            MmRankExt
                .type_check("rank_topn", &[q, MoaType::Int])
                .unwrap(),
            MoaType::Ranked
        );
        assert_eq!(
            MmRankExt
                .type_check("projecttolist", &[MoaType::Ranked])
                .unwrap(),
            MoaType::List(Box::new(MoaType::Int))
        );
        assert!(MmRankExt.type_check("rank", &[MoaType::Int]).is_err());
        assert!(MmRankExt
            .type_check("topn", &[MoaType::Ranked, MoaType::Str])
            .is_err());
        assert!(matches!(
            MmRankExt.type_check("nope", &[]),
            Err(CoreError::UnknownOp { .. })
        ));
    }

    #[test]
    fn bad_query_terms_rejected() {
        let mut ctx = ExecContext::with_ir(runtime());
        let bad = Value::List(vec![Value::Int(-4)]);
        assert!(MmRankExt.evaluate("rank", &[bad], &mut ctx).is_err());
        let not_list = Value::Int(3);
        assert!(MmRankExt.evaluate("rank", &[not_list], &mut ctx).is_err());
    }
}
