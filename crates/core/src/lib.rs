//! # moa-core — the Moa structured object algebra and its top-N optimizer
//!
//! The primary contribution of Blok's EDBT 2000 paper, implemented in full:
//!
//! * [`value`] / [`types`] — structured values (LIST, BAG, SET, TUPLE, and
//!   the MM RANKED list) and their types,
//! * [`expr`] — logical expressions whose operators carry their defining
//!   extension,
//! * [`ext`] — the extension registry (ADTs): LIST, BAG, SET, TUPLE and
//!   MMRANK, the last compiling onto the `moa-ir` retrieval engine,
//! * [`optimizer`] — the paper's **three-layer optimizer**: the logical
//!   layer, the new *inter-object* layer (rewrites across extension pairs —
//!   Example 1 of the paper), and E-ADT-style *intra-object* physical
//!   choice,
//! * [`cost`] — the single centralized cost model (Step 3),
//! * [`planner`] — the cost-driven physical retrieval planner: prices
//!   every engine path behind `moa_ir::physical` and executes the winner,
//!   calibrating its weights from measured counters (Step 3),
//! * [`session`] — the user-facing façade: optimize, execute, EXPLAIN.
//!
//! ```
//! use moa_core::{Env, Expr, Session, Value};
//!
//! // The paper's Example 1 shape: select(projecttobag(list), lo, hi),
//! // on a list large enough that the rewrite pays off.
//! let expr = Expr::bag_select(
//!     Expr::projecttobag(Expr::constant(Value::int_list(0..1_000))),
//!     Value::Int(100),
//!     Value::Int(150),
//! );
//! let session = Session::new();
//! let optimized = session.run(&expr, &Env::new()).unwrap();
//! let baseline = session.run_unoptimized(&expr, &Env::new()).unwrap();
//! assert_eq!(optimized.value, baseline.value);
//! assert!(optimized.work < baseline.work);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod ext;
pub mod optimizer;
pub mod parse;
pub mod planner;
pub mod session;
pub mod types;
pub mod value;

pub use cost::learning::LearnedDistribution;
pub use cost::{CostContext, CostModel, CostWeights, Estimate, IrCostInfo};
pub use error::{CoreError, Result};
pub use exec::{evaluate, infer_type, Env};
pub use explain::render;
pub use expr::{Expr, ExtensionId};
pub use ext::{ExecContext, Extension, IrRuntime, Registry};
pub use optimizer::{Optimizer, OptimizerConfig, OptimizerTrace};
pub use parse::parse_expr;
pub use planner::{MemoStats, PlanAlternative, PlanDecision, Planner, PlannerConfig, QueryProfile};
pub use session::{RunReport, Session};
pub use types::MoaType;
pub use value::Value;
