//! Logical algebra expressions.
//!
//! An [`Expr`] is a tree of operator applications over constants and named
//! inputs. Every operator is owned by an [`ExtensionId`] — the structural
//! fact the *inter-object* optimizer reasons about: rewrite rules fire on
//! patterns spanning two different extensions' operators (the paper's
//! Example 1 is `BAG.select ∘ LIST.projecttobag`).

use std::fmt;

use crate::value::Value;

/// The extensions (ADTs / data blades, in the paper's terms) shipped with
/// this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtensionId {
    /// Ordered lists.
    List,
    /// Multisets.
    Bag,
    /// Sets.
    Set,
    /// Tuples.
    Tuple,
    /// Multimedia ranking (ranked lists produced by content retrieval).
    MmRank,
}

impl fmt::Display for ExtensionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExtensionId::List => "LIST",
            ExtensionId::Bag => "BAG",
            ExtensionId::Set => "SET",
            ExtensionId::Tuple => "TUPLE",
            ExtensionId::MmRank => "MMRANK",
        };
        f.write_str(s)
    }
}

/// A logical expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// A named input, bound at execution time.
    Var(String),
    /// An operator application.
    Apply {
        /// The extension owning the operator.
        ext: ExtensionId,
        /// The operator name.
        op: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Shorthand for an operator application.
    pub fn apply(ext: ExtensionId, op: &str, args: Vec<Expr>) -> Expr {
        Expr::Apply {
            ext,
            op: op.to_owned(),
            args,
        }
    }

    /// A constant expression.
    pub fn constant(v: Value) -> Expr {
        Expr::Const(v)
    }

    /// A variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_owned())
    }

    // ------ LIST builders ------

    /// `LIST.select(list, lo, hi)` — elements with values in `[lo, hi]`.
    pub fn list_select(list: Expr, lo: Value, hi: Value) -> Expr {
        Expr::apply(
            ExtensionId::List,
            "select",
            vec![list, Expr::Const(lo), Expr::Const(hi)],
        )
    }

    /// `LIST.sort(list)` — ascending sort.
    pub fn list_sort(list: Expr) -> Expr {
        Expr::apply(ExtensionId::List, "sort", vec![list])
    }

    /// `LIST.topn(list, n)` — the `n` largest elements, descending.
    pub fn list_topn(list: Expr, n: i64) -> Expr {
        Expr::apply(
            ExtensionId::List,
            "topn",
            vec![list, Expr::Const(Value::Int(n))],
        )
    }

    /// `LIST.firstn(list, n)` — the first `n` elements.
    pub fn list_firstn(list: Expr, n: i64) -> Expr {
        Expr::apply(
            ExtensionId::List,
            "firstn",
            vec![list, Expr::Const(Value::Int(n))],
        )
    }

    /// `LIST.projecttobag(list)`.
    pub fn projecttobag(list: Expr) -> Expr {
        Expr::apply(ExtensionId::List, "projecttobag", vec![list])
    }

    /// `LIST.length(list)`.
    pub fn list_length(list: Expr) -> Expr {
        Expr::apply(ExtensionId::List, "length", vec![list])
    }

    /// `LIST.sum(list)`.
    pub fn list_sum(list: Expr) -> Expr {
        Expr::apply(ExtensionId::List, "sum", vec![list])
    }

    // ------ BAG builders ------

    /// `BAG.select(bag, lo, hi)`.
    pub fn bag_select(bag: Expr, lo: Value, hi: Value) -> Expr {
        Expr::apply(
            ExtensionId::Bag,
            "select",
            vec![bag, Expr::Const(lo), Expr::Const(hi)],
        )
    }

    /// `BAG.count(bag)`.
    pub fn bag_count(bag: Expr) -> Expr {
        Expr::apply(ExtensionId::Bag, "count", vec![bag])
    }

    /// `BAG.sum(bag)`.
    pub fn bag_sum(bag: Expr) -> Expr {
        Expr::apply(ExtensionId::Bag, "sum", vec![bag])
    }

    /// `BAG.projecttoset(bag)`.
    pub fn projecttoset(bag: Expr) -> Expr {
        Expr::apply(ExtensionId::Bag, "projecttoset", vec![bag])
    }

    // ------ SET builders ------

    /// `SET.select(set, lo, hi)`.
    pub fn set_select(set: Expr, lo: Value, hi: Value) -> Expr {
        Expr::apply(
            ExtensionId::Set,
            "select",
            vec![set, Expr::Const(lo), Expr::Const(hi)],
        )
    }

    /// `SET.member(set, v)`.
    pub fn set_member(set: Expr, v: Value) -> Expr {
        Expr::apply(ExtensionId::Set, "member", vec![set, Expr::Const(v)])
    }

    // ------ MMRANK builders ------

    /// `MMRANK.rank(query)` — rank the collection for a list of term ids.
    pub fn mm_rank(query: Expr) -> Expr {
        Expr::apply(ExtensionId::MmRank, "rank", vec![query])
    }

    /// `MMRANK.topn(ranked, n)`.
    pub fn mm_topn(ranked: Expr, n: i64) -> Expr {
        Expr::apply(
            ExtensionId::MmRank,
            "topn",
            vec![ranked, Expr::Const(Value::Int(n))],
        )
    }

    /// `MMRANK.cutoff(ranked, threshold)`.
    pub fn mm_cutoff(ranked: Expr, threshold: f64) -> Expr {
        Expr::apply(
            ExtensionId::MmRank,
            "cutoff",
            vec![ranked, Expr::Const(Value::Float(threshold))],
        )
    }

    /// `MMRANK.projecttolist(ranked)` — document ids in rank order.
    pub fn mm_projecttolist(ranked: Expr) -> Expr {
        Expr::apply(ExtensionId::MmRank, "projecttolist", vec![ranked])
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Apply { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }

    /// The free variables of the expression, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(e: &Expr, out: &mut Vec<String>) {
            match e {
                Expr::Var(name) => {
                    if !out.contains(name) {
                        out.push(name.clone());
                    }
                }
                Expr::Apply { args, .. } => {
                    for a in args {
                        walk(a, out);
                    }
                }
                Expr::Const(_) => {}
            }
        }
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(name) => write!(f, "${name}"),
            Expr::Apply { ext, op, args } => {
                write!(f, "{ext}.{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_construct_expected_trees() {
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::constant(Value::int_list([1, 2, 3]))),
            Value::Int(2),
            Value::Int(3),
        );
        match &e {
            Expr::Apply { ext, op, args } => {
                assert_eq!(*ext, ExtensionId::Bag);
                assert_eq!(op, "select");
                assert_eq!(args.len(), 3);
                assert!(matches!(
                    &args[0],
                    Expr::Apply { ext: ExtensionId::List, op, .. } if op == "projecttobag"
                ));
            }
            _ => panic!("expected Apply"),
        }
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::var("l")),
            Value::Int(2),
            Value::Int(4),
        );
        assert_eq!(e.to_string(), "BAG.select(LIST.projecttobag($l), 2, 4)");
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::list_topn(Expr::list_sort(Expr::var("x")), 5);
        // topn(sort(var), const) = 4 nodes
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn free_vars_in_order_without_duplicates() {
        let e = Expr::apply(
            ExtensionId::List,
            "concat",
            vec![Expr::var("a"), Expr::var("b")],
        );
        let e = Expr::apply(ExtensionId::List, "concat", vec![e, Expr::var("a")]);
        assert_eq!(e.free_vars(), vec!["a".to_string(), "b".to_string()]);
        assert!(Expr::constant(Value::Int(1)).free_vars().is_empty());
    }

    #[test]
    fn extension_display() {
        assert_eq!(ExtensionId::MmRank.to_string(), "MMRANK");
        assert_eq!(ExtensionId::List.to_string(), "LIST");
    }
}
