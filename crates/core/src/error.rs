//! Error types for the algebra layer.

use std::fmt;

use crate::expr::ExtensionId;

/// Errors produced by type checking, optimization or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A type error (with human-readable context).
    Type(String),
    /// An operator unknown to its extension.
    UnknownOp {
        /// The extension addressed.
        ext: ExtensionId,
        /// The unknown operator name.
        op: String,
    },
    /// Wrong number of arguments for an operator.
    Arity {
        /// The extension addressed.
        ext: ExtensionId,
        /// The operator.
        op: String,
        /// Arguments required.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// A free variable with no binding in the environment.
    UnboundVar(String),
    /// The MM extension was used without an attached IR runtime.
    NoIrRuntime,
    /// Error from the IR engine.
    Ir(moa_ir::IrError),
    /// Error from the storage kernel.
    Storage(moa_storage::StorageError),
    /// Any other runtime error.
    Runtime(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Type(msg) => write!(f, "type error: {msg}"),
            CoreError::UnknownOp { ext, op } => write!(f, "unknown operator {ext:?}.{op}"),
            CoreError::Arity {
                ext,
                op,
                expected,
                found,
            } => write!(f, "{ext:?}.{op} expects {expected} arguments, got {found}"),
            CoreError::UnboundVar(name) => write!(f, "unbound variable: {name}"),
            CoreError::NoIrRuntime => {
                write!(f, "MMRANK operators require an attached IR runtime")
            }
            CoreError::Ir(e) => write!(f, "IR error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Runtime(msg) => write!(f, "runtime error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ir(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<moa_ir::IrError> for CoreError {
    fn from(e: moa_ir::IrError) -> Self {
        CoreError::Ir(e)
    }
}

impl From<moa_storage::StorageError> for CoreError {
    fn from(e: moa_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

/// Result alias for algebra operations.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::Type("bad".into()).to_string().contains("bad"));
        let e = CoreError::UnknownOp {
            ext: ExtensionId::List,
            op: "frobnicate".into(),
        };
        assert!(e.to_string().contains("frobnicate"));
        let e = CoreError::Arity {
            ext: ExtensionId::Bag,
            op: "select".into(),
            expected: 3,
            found: 1,
        };
        assert!(e.to_string().contains("expects 3"));
        assert!(CoreError::NoIrRuntime.to_string().contains("IR runtime"));
    }

    #[test]
    fn conversions_chain_sources() {
        use std::error::Error;
        let e: CoreError = moa_ir::IrError::UnknownTerm(3).into();
        assert!(e.source().is_some());
        let e: CoreError = moa_storage::StorageError::Empty.into();
        assert!(e.source().is_some());
        assert!(CoreError::UnboundVar("x".into()).source().is_none());
    }
}
