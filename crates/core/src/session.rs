//! The top-level API: a session ties together registry, optimizer, cost
//! model, and (optionally) the MM retrieval runtime.

use std::sync::Arc;
use std::time::Instant;

use moa_obs::{MetricsRegistry, Phase};

use crate::cost::{CostContext, CostModel, Estimate};
use crate::error::Result;
use crate::exec::{evaluate, infer_type, Env};
use crate::explain::render;
use crate::expr::{Expr, ExtensionId};
use crate::ext::{ExecContext, IrRuntime, Registry};
use crate::optimizer::{Optimizer, OptimizerConfig, OptimizerTrace};
use crate::types::MoaType;
use crate::value::Value;

/// The result of running an expression through the session.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The computed value.
    pub value: Value,
    /// Abstract work units the execution consumed.
    pub work: u64,
    /// Physical notes emitted during execution.
    pub notes: Vec<String>,
    /// The plan that was actually executed.
    pub executed_plan: Expr,
    /// The optimizer trace (empty when optimization was skipped).
    pub trace: OptimizerTrace,
}

/// A Moa session.
pub struct Session {
    registry: Registry,
    optimizer: Optimizer,
    cost_model: CostModel,
    ir: Option<Arc<IrRuntime>>,
    /// Session-level telemetry: EXPLAIN ANALYZE records one
    /// `planner.misestimate.<operator>` histogram per physical strategy
    /// (observed ÷ estimated postings, in percent), so a long-lived
    /// session accumulates a calibration-quality profile per operator.
    metrics: Arc<MetricsRegistry>,
}

impl Session {
    /// A session without MM retrieval capability.
    pub fn new() -> Session {
        Session {
            registry: Registry::standard(),
            optimizer: Optimizer::default(),
            cost_model: CostModel::default(),
            ir: None,
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// A session with an attached IR runtime (enables MMRANK operators).
    pub fn with_ir(ir: Arc<IrRuntime>) -> Session {
        Session {
            ir: Some(ir),
            ..Session::new()
        }
    }

    /// Replace the optimizer configuration (e.g. to disable layers for
    /// ablation runs).
    pub fn set_optimizer_config(&mut self, config: OptimizerConfig) {
        self.optimizer = Optimizer::new(config);
    }

    /// The extension registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Optimize an expression, returning the plan and trace.
    pub fn optimize(&self, expr: &Expr) -> (Expr, OptimizerTrace) {
        self.optimizer.optimize(expr)
    }

    /// Type-check an expression against an environment.
    pub fn type_check(&self, expr: &Expr, env: &Env) -> Result<MoaType> {
        infer_type(expr, &env.type_env(), &self.registry)
    }

    /// Optimize then execute.
    pub fn run(&self, expr: &Expr, env: &Env) -> Result<RunReport> {
        let (plan, trace) = self.optimizer.optimize(expr);
        self.execute_plan(plan, trace, env)
    }

    /// Execute without optimization (the "unoptimized case" baseline).
    pub fn run_unoptimized(&self, expr: &Expr, env: &Env) -> Result<RunReport> {
        self.execute_plan(expr.clone(), OptimizerTrace::default(), env)
    }

    fn execute_plan(&self, plan: Expr, trace: OptimizerTrace, env: &Env) -> Result<RunReport> {
        let mut ctx = match &self.ir {
            Some(ir) => ExecContext::with_ir(Arc::clone(ir)),
            None => ExecContext::new(),
        };
        let value = evaluate(&plan, env, &self.registry, &mut ctx)?;
        Ok(RunReport {
            value,
            work: ctx.elements_processed,
            notes: ctx.notes,
            executed_plan: plan,
            trace,
        })
    }

    /// A cost context primed with the attached IR collection's statistics.
    pub fn cost_context(&self) -> CostContext {
        let mut ctx = CostContext::new();
        if let Some(ir) = &self.ir {
            ctx.ir = Some(ir.cost_info());
        }
        ctx
    }

    /// Estimate the cost of an expression with the session's model.
    pub fn estimate(&self, expr: &Expr) -> Result<Estimate> {
        self.cost_model.estimate(expr, &self.cost_context())
    }

    /// Human-readable EXPLAIN: original plan, optimized plan, trace, cost
    /// estimates where available, and — when the plan ranks a constant
    /// query over an attached IR runtime — the chosen physical retrieval
    /// operator next to its rejected alternatives.
    pub fn explain(&self, expr: &Expr) -> String {
        let (optimized, trace) = self.optimizer.optimize(expr);
        let mut out = String::new();
        out.push_str("== original plan ==\n");
        out.push_str(&render(expr));
        if let Ok(est) = self.estimate(expr) {
            out.push_str(&format!(
                "   est. cost {:.0}, rows {:.0}\n",
                est.cost, est.rows
            ));
        }
        out.push_str("== optimized plan ==\n");
        out.push_str(&render(&optimized));
        if let Ok(est) = self.estimate(&optimized) {
            out.push_str(&format!(
                "   est. cost {:.0}, rows {:.0}\n",
                est.cost, est.rows
            ));
        }
        out.push_str("== rewrites ==\n");
        if trace.fired.is_empty() {
            out.push_str("   (none)\n");
        } else {
            for r in &trace.fired {
                out.push_str(&format!("   {r}\n"));
            }
        }
        if let Some(ir) = &self.ir {
            if let Some((terms, n)) = find_const_rank_query(&optimized) {
                out.push_str("== physical retrieval ==\n");
                if n.is_none() {
                    // A non-constant N means the pricing below assumes the
                    // full collection; execution replans with the real N.
                    out.push_str("   (N not constant; priced for N = num_docs)\n");
                }
                let n = n.unwrap_or_else(|| ir.num_docs());
                match ir.plan_for(&terms, n) {
                    Ok(decision) => {
                        if ir.fixed_plan().is_some() {
                            out.push_str("   (strategy pinned; planner shown for comparison)\n");
                        }
                        out.push_str(&decision.render());
                    }
                    Err(e) => out.push_str(&format!("   (not plannable: {e})\n")),
                }
            }
        }
        out
    }

    /// The session's metrics registry. EXPLAIN ANALYZE feeds the
    /// `planner.misestimate.<operator>` histograms here; embedders can
    /// render them with [`MetricsRegistry::render_text`].
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// EXPLAIN ANALYZE: everything [`Session::explain`] shows, then the
    /// plan is *executed* and estimates sit next to observations.
    ///
    /// Three analyze sections follow the static explain:
    ///
    /// * **algebra execution** — the optimized plan runs through the
    ///   normal [`Session::run`] path; estimated cost sits next to the
    ///   observed abstract work units and wall time;
    /// * **physical retrieval** — when the plan ranks a constant query
    ///   over an attached IR runtime, *every feasible* physical strategy
    ///   is executed side by side: estimated cost and postings against
    ///   observed postings, the observed÷estimated ratio, and wall time,
    ///   with the planner's choice marked `->`. Each row also records a
    ///   `planner.misestimate.<operator>` sample (ratio in percent) into
    ///   [`Session::metrics`], so repeated ANALYZE runs accumulate a
    ///   calibration-quality histogram per operator;
    /// * **stage walls** — the chosen strategy's per-stage clocks
    ///   ([`moa_obs::PhaseAgg`]: plan, gate pass, decode, score, merge).
    ///
    /// Analyzing is measurement only: the rejected alternatives run
    /// through [`IrRuntime::execute_plan_analyzed`], which does *not*
    /// calibrate the planner, and the answers returned by every analyzed
    /// execution are bit-identical to the uninstrumented path (pinned by
    /// the oracle tests in `tests/explain_analyze.rs`).
    pub fn explain_analyze(&self, expr: &Expr, env: &Env) -> Result<String> {
        let mut out = self.explain(expr);
        let (optimized, _) = self.optimizer.optimize(expr);

        let est = self.estimate(&optimized).ok();
        let t0 = Instant::now();
        let report = self.run(expr, env)?;
        let wall = t0.elapsed();
        out.push_str("== analyze: algebra execution ==\n");
        match est {
            Some(e) => out.push_str(&format!(
                "   est. cost {:.0} | observed work {} | wall {:.1}us\n",
                e.cost,
                report.work,
                wall.as_nanos() as f64 / 1e3,
            )),
            None => out.push_str(&format!(
                "   est. cost (unavailable) | observed work {} | wall {:.1}us\n",
                report.work,
                wall.as_nanos() as f64 / 1e3,
            )),
        }

        let Some(ir) = &self.ir else { return Ok(out) };
        let Some((terms, n)) = find_const_rank_query(&optimized) else {
            return Ok(out);
        };
        let n = n.unwrap_or_else(|| ir.num_docs());
        let decision = ir.plan_for(&terms, n)?;
        out.push_str("== analyze: physical retrieval (estimated vs observed) ==\n");
        out.push_str(&format!(
            "   {:<22} {:>10} {:>10} {:>10} {:>8} {:>10}\n",
            "operator", "est.cost", "est.post", "postings", "ratio", "wall"
        ));
        let mut chosen_phases = None;
        for alt in decision.alternatives.iter().filter(|a| a.feasible) {
            let (rep, phases, wall) = ir.execute_plan_analyzed(alt.plan, &terms, n)?;
            let ratio = rep.postings_scanned as f64 / alt.est_postings.max(1.0);
            self.metrics
                .histogram(&format!("planner.misestimate.{}", alt.plan.name()))
                .record((ratio * 100.0).round() as u64);
            let marker = if alt.plan == decision.chosen {
                "->"
            } else {
                "  "
            };
            out.push_str(&format!(
                "{marker} {:<22} {:>10.0} {:>10.0} {:>10} {:>7.2}x {:>8.1}us\n",
                alt.plan.name(),
                alt.cost,
                alt.est_postings,
                rep.postings_scanned,
                ratio,
                wall.as_nanos() as f64 / 1e3,
            ));
            if alt.plan == decision.chosen {
                chosen_phases = Some(phases);
            }
        }
        if let Some(phases) = chosen_phases {
            out.push_str("== analyze: chosen-operator stage walls ==\n   ");
            let mut first = true;
            for p in Phase::ALL {
                let ns = phases.get(p);
                if ns == 0 {
                    continue;
                }
                if !first {
                    out.push_str(" | ");
                }
                first = false;
                out.push_str(&format!("{} {:.1}us", p.name(), ns as f64 / 1e3));
            }
            if first {
                out.push_str("(no stage clocks recorded)");
            }
            out.push('\n');
        }
        Ok(out)
    }
}

/// Find the first MMRANK `rank`/`rank_topn` application whose query is a
/// constant term list, returning the term ids and (for the fused form)
/// the constant N.
fn find_const_rank_query(expr: &Expr) -> Option<(Vec<u32>, Option<usize>)> {
    if let Expr::Apply { ext, op, args } = expr {
        if *ext == ExtensionId::MmRank && (op == "rank" || op == "rank_topn") {
            if let Some(Expr::Const(v)) = args.first() {
                if let Some(items) = v.as_list() {
                    let terms: Option<Vec<u32>> = items
                        .iter()
                        .map(|t| t.as_int().and_then(|i| u32::try_from(i).ok()))
                        .collect();
                    if let Some(terms) = terms {
                        let n = match args.get(1) {
                            Some(Expr::Const(Value::Int(i))) if *i >= 0 => Some(*i as usize),
                            _ => None,
                        };
                        return Some((terms, n));
                    }
                }
            }
        }
        return args.iter().find_map(find_const_rank_query);
    }
    None
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerConfig;

    #[test]
    fn run_optimizes_and_executes() {
        let s = Session::new();
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::constant(Value::int_list(0..1_000))),
            Value::Int(100),
            Value::Int(150),
        );
        let opt = s.run(&e, &Env::new()).unwrap();
        let raw = s.run_unoptimized(&e, &Env::new()).unwrap();
        assert_eq!(opt.value, raw.value);
        assert!(
            opt.work < raw.work,
            "optimized {} !< raw {}",
            opt.work,
            raw.work
        );
        assert!(!opt.trace.fired.is_empty());
        assert!(raw.trace.fired.is_empty());
    }

    #[test]
    fn ablation_config_changes_behaviour() {
        let mut s = Session::new();
        s.set_optimizer_config(OptimizerConfig::disabled());
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::constant(Value::int_list([1, 2, 3]))),
            Value::Int(1),
            Value::Int(2),
        );
        let rep = s.run(&e, &Env::new()).unwrap();
        assert!(rep.trace.fired.is_empty());
        assert_eq!(rep.executed_plan, e);
    }

    #[test]
    fn type_check_through_session() {
        let s = Session::new();
        let e = Expr::bag_count(Expr::projecttobag(Expr::constant(Value::int_list([1]))));
        assert_eq!(s.type_check(&e, &Env::new()).unwrap(), MoaType::Int);
    }

    #[test]
    fn explain_contains_both_plans_and_trace() {
        let s = Session::new();
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::var("l")),
            Value::Int(2),
            Value::Int(4),
        );
        let text = s.explain(&e);
        assert!(text.contains("== original plan =="));
        assert!(text.contains("== optimized plan =="));
        assert!(text.contains("inter.bag_select_over_projecttobag"));
    }

    #[test]
    fn estimate_without_ir_handles_pure_plans() {
        let s = Session::new();
        let e = Expr::list_sum(Expr::constant(Value::int_list([1, 2, 3])));
        let est = s.estimate(&e).unwrap();
        assert!(est.cost > 0.0);
        // MMRANK plans cannot be estimated without a runtime.
        let r = Expr::mm_rank(Expr::var("q"));
        assert!(s.estimate(&r).is_err());
    }

    #[test]
    fn notes_surface_physical_decisions() {
        let s = Session::new();
        let e = Expr::list_select(
            Expr::constant(Value::int_list([1, 2, 3, 4, 5])),
            Value::Int(2),
            Value::Int(3),
        );
        let rep = s.run(&e, &Env::new()).unwrap();
        assert!(rep
            .notes
            .iter()
            .any(|n| n.contains("select_ordered") || n.contains("binary search")));
    }
}
