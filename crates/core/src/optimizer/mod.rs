//! The three-layer Moa optimizer (the paper's Step 2).
//!
//! The paper places a new **inter-object optimizer** between the high-level
//! algebraic (logical) optimizer and the per-extension (intra-object,
//! E-ADT-style) optimizers:
//!
//! ```text
//!        logical optimizer      — extension-agnostic algebraic rewrites
//!   →  inter-object optimizer   — rewrite rules across *pairs* of
//!                                  extensions (Example 1 of the paper)
//!   →  intra-object optimizers  — per-extension physical operator choice
//! ```
//!
//! Rules are applied bottom-up to a fixpoint per layer; the fired-rule trace
//! is returned so experiments (and EXPLAIN output) can show exactly which
//! knowledge produced which plan.

pub mod inter;
pub mod intra;
pub mod logical;

use crate::expr::{Expr, ExtensionId};
use crate::value::Value;

/// A named rewrite rule: returns the replacement when it matches.
pub struct Rule {
    /// The rule name (appears in optimizer traces).
    pub name: &'static str,
    /// Attempt the rewrite at a single node.
    pub apply: fn(&Expr) -> Option<Expr>,
}

/// The trace of an optimization run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptimizerTrace {
    /// Names of rules in firing order.
    pub fired: Vec<String>,
}

/// Optimizer configuration: layers can be toggled for ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Enable the logical (extension-agnostic) layer.
    pub logical: bool,
    /// Enable the inter-object layer.
    pub inter_object: bool,
    /// Enable the intra-object (physical) layer.
    pub intra_object: bool,
    /// Fixpoint iteration cap per layer.
    pub max_passes: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            logical: true,
            inter_object: true,
            intra_object: true,
            max_passes: 16,
        }
    }
}

impl OptimizerConfig {
    /// All layers disabled — the "unoptimized case" baseline.
    pub fn disabled() -> OptimizerConfig {
        OptimizerConfig {
            logical: false,
            inter_object: false,
            intra_object: false,
            max_passes: 0,
        }
    }
}

/// The Moa optimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Optimizer {
    /// Configuration (layer toggles).
    pub config: OptimizerConfig,
}

impl Optimizer {
    /// An optimizer with the given configuration.
    pub fn new(config: OptimizerConfig) -> Optimizer {
        Optimizer { config }
    }

    /// Optimize an expression, returning the rewritten plan and the trace.
    pub fn optimize(&self, expr: &Expr) -> (Expr, OptimizerTrace) {
        let mut trace = OptimizerTrace::default();
        let mut current = expr.clone();
        if self.config.logical {
            current = run_layer(
                &current,
                logical::rules(),
                self.config.max_passes,
                &mut trace,
            );
        }
        if self.config.inter_object {
            current = run_layer(&current, inter::rules(), self.config.max_passes, &mut trace);
            // Inter-object rewrites may expose new logical opportunities
            // (e.g. pushed-down selects that can fuse).
            if self.config.logical {
                current = run_layer(
                    &current,
                    logical::rules(),
                    self.config.max_passes,
                    &mut trace,
                );
            }
        }
        if self.config.intra_object {
            current = run_layer(&current, intra::rules(), self.config.max_passes, &mut trace);
        }
        (current, trace)
    }
}

/// Run one rule set bottom-up to a fixpoint (bounded by `max_passes`).
fn run_layer(expr: &Expr, rules: &[Rule], max_passes: usize, trace: &mut OptimizerTrace) -> Expr {
    let mut current = expr.clone();
    for _ in 0..max_passes {
        let (next, fired) = rewrite_bottom_up(&current, rules, trace);
        if fired == 0 {
            break;
        }
        current = next;
    }
    current
}

/// One bottom-up pass: children first, then try every rule at the node.
fn rewrite_bottom_up(expr: &Expr, rules: &[Rule], trace: &mut OptimizerTrace) -> (Expr, usize) {
    let mut fired = 0usize;
    let rebuilt = match expr {
        Expr::Const(_) | Expr::Var(_) => expr.clone(),
        Expr::Apply { ext, op, args } => {
            let new_args: Vec<Expr> = args
                .iter()
                .map(|a| {
                    let (e, f) = rewrite_bottom_up(a, rules, trace);
                    fired += f;
                    e
                })
                .collect();
            Expr::Apply {
                ext: *ext,
                op: op.clone(),
                args: new_args,
            }
        }
    };
    let mut node = rebuilt;
    loop {
        let mut changed = false;
        for rule in rules {
            if let Some(next) = (rule.apply)(&node) {
                trace.fired.push(rule.name.to_owned());
                fired += 1;
                node = next;
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
        if fired > 10_000 {
            // Defensive cap against non-terminating rule sets.
            break;
        }
    }
    (node, fired)
}

/// Whether the expression's result is *provably* ascending-sorted under
/// `Value::total_cmp` — the ordering knowledge the optimizer propagates
/// across extension boundaries. `Var` inputs are unknown; `Const` values
/// carry catalog knowledge (their sortedness is a stored property, as in
/// MonetDB).
pub fn provably_sorted_asc(expr: &Expr) -> bool {
    match expr {
        Expr::Const(v) => match v {
            Value::Ranked(_) => false, // ordered by score, not by value
            other => other.is_sorted_asc(),
        },
        Expr::Var(_) => false,
        Expr::Apply { ext, op, args } => match (ext, op.as_str()) {
            (ExtensionId::List, "sort") => true,
            // Order-preserving LIST ops.
            (ExtensionId::List, "select" | "select_ordered" | "firstn") => {
                args.first().is_some_and(provably_sorted_asc)
            }
            // BAG / SET canonical representations are sorted whenever the
            // optimizer can see the constructor.
            (ExtensionId::List, "projecttobag") => true,
            (ExtensionId::Bag, "projecttoset" | "union") => true,
            (ExtensionId::Bag, "select" | "select_ordered") => {
                args.first().is_some_and(provably_sorted_asc)
            }
            (ExtensionId::Bag | ExtensionId::Set, "projecttolist") => true,
            (ExtensionId::Set, "select" | "select_ordered") => {
                args.first().is_some_and(provably_sorted_asc)
            }
            (ExtensionId::Set, "union") => true,
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_optimizer_is_identity() {
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::var("l")),
            Value::Int(2),
            Value::Int(4),
        );
        let opt = Optimizer::new(OptimizerConfig::disabled());
        let (out, trace) = opt.optimize(&e);
        assert_eq!(out, e);
        assert!(trace.fired.is_empty());
    }

    #[test]
    fn order_inference_on_sorted_const() {
        let sorted = Expr::constant(Value::int_list([1, 2, 3]));
        let unsorted = Expr::constant(Value::int_list([3, 1]));
        assert!(provably_sorted_asc(&sorted));
        assert!(!provably_sorted_asc(&unsorted));
        assert!(!provably_sorted_asc(&Expr::var("x")));
    }

    #[test]
    fn order_inference_through_operators() {
        let e = Expr::list_select(
            Expr::list_sort(Expr::var("x")),
            Value::Int(0),
            Value::Int(9),
        );
        assert!(provably_sorted_asc(&e));
        let e2 = Expr::list_select(Expr::var("x"), Value::Int(0), Value::Int(9));
        assert!(!provably_sorted_asc(&e2));
        // Canonical bag representation is sorted when provable.
        assert!(provably_sorted_asc(&Expr::projecttobag(Expr::var("x"))));
    }

    #[test]
    fn ranked_consts_are_not_value_sorted() {
        let r = Expr::constant(Value::ranked(vec![(1, 0.9), (2, 0.8)]));
        assert!(!provably_sorted_asc(&r));
    }

    #[test]
    fn full_pipeline_traces_rules() {
        // The paper's Example 1 end-to-end.
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::constant(Value::int_list([1, 2, 3, 4, 4, 5]))),
            Value::Int(2),
            Value::Int(4),
        );
        let opt = Optimizer::default();
        let (out, trace) = opt.optimize(&e);
        assert!(!trace.fired.is_empty());
        // The select must have been pushed below the projection.
        match &out {
            Expr::Apply { ext, op, args } => {
                assert_eq!(*ext, ExtensionId::List);
                assert_eq!(op, "projecttobag");
                assert!(matches!(
                    &args[0],
                    Expr::Apply { ext: ExtensionId::List, op, .. }
                        if op == "select" || op == "select_ordered"
                ));
            }
            other => panic!("unexpected shape: {other}"),
        }
    }
}
