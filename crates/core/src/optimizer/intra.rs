//! The intra-object (E-ADT-style) optimizer layer.
//!
//! Per-extension physical operator choice, as in PREDATOR's enhanced data
//! types [Seshadri & Paskin, SIGMOD 1997]: each rule concerns a *single*
//! extension and substitutes a cheaper physical variant when its
//! precondition is proven:
//!
//! * `select` → `select_ordered` (binary search) on provably ordered input,
//! * `member` → `member_ordered` on provably ordered sets,
//! * `MMRANK.topn ∘ MMRANK.rank` → the fused `rank_topn`, which pushes the
//!   bound into retrieval (the paper's "special top N operators … at the
//!   query language level").

use crate::expr::{Expr, ExtensionId};
use crate::optimizer::{provably_sorted_asc, Rule};

/// The intra-object rule set.
pub fn rules() -> &'static [Rule] {
    &[
        Rule {
            name: "intra.list_select_ordered",
            apply: list_select_ordered,
        },
        Rule {
            name: "intra.bag_select_ordered",
            apply: bag_select_ordered,
        },
        Rule {
            name: "intra.set_select_ordered",
            apply: set_select_ordered,
        },
        Rule {
            name: "intra.set_member_ordered",
            apply: set_member_ordered,
        },
        Rule {
            name: "intra.mm_rank_topn_fusion",
            apply: mm_rank_topn_fusion,
        },
    ]
}

fn select_to_ordered(e: &Expr, ext: ExtensionId) -> Option<Expr> {
    match e {
        Expr::Apply { ext: x, op, args }
            if *x == ext && op == "select" && provably_sorted_asc(&args[0]) =>
        {
            Some(Expr::Apply {
                ext,
                op: "select_ordered".to_owned(),
                args: args.clone(),
            })
        }
        _ => None,
    }
}

fn list_select_ordered(e: &Expr) -> Option<Expr> {
    select_to_ordered(e, ExtensionId::List)
}

fn bag_select_ordered(e: &Expr) -> Option<Expr> {
    select_to_ordered(e, ExtensionId::Bag)
}

fn set_select_ordered(e: &Expr) -> Option<Expr> {
    select_to_ordered(e, ExtensionId::Set)
}

fn set_member_ordered(e: &Expr) -> Option<Expr> {
    match e {
        Expr::Apply { ext, op, args }
            if *ext == ExtensionId::Set && op == "member" && provably_sorted_asc(&args[0]) =>
        {
            Some(Expr::Apply {
                ext: ExtensionId::Set,
                op: "member_ordered".to_owned(),
                args: args.clone(),
            })
        }
        _ => None,
    }
}

/// `MMRANK.topn(MMRANK.rank(q), n)` → `MMRANK.rank_topn(q, n)`.
fn mm_rank_topn_fusion(e: &Expr) -> Option<Expr> {
    let (outer_args, ()) = match e {
        Expr::Apply { ext, op, args } if *ext == ExtensionId::MmRank && op == "topn" => (args, ()),
        _ => return None,
    };
    let inner_args = match &outer_args[0] {
        Expr::Apply { ext, op, args } if *ext == ExtensionId::MmRank && op == "rank" => args,
        _ => return None,
    };
    Some(Expr::Apply {
        ext: ExtensionId::MmRank,
        op: "rank_topn".to_owned(),
        args: vec![inner_args[0].clone(), outer_args[1].clone()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{evaluate, Env};
    use crate::ext::{ExecContext, Registry};
    use crate::optimizer::{Optimizer, OptimizerConfig};
    use crate::value::Value;

    fn intra_only() -> Optimizer {
        Optimizer::new(OptimizerConfig {
            logical: false,
            inter_object: false,
            intra_object: true,
            max_passes: 8,
        })
    }

    #[test]
    fn sorted_const_select_becomes_binary_search() {
        let e = Expr::list_select(
            Expr::constant(Value::int_list([1, 2, 3, 4, 5])),
            Value::Int(2),
            Value::Int(4),
        );
        let (after, trace) = intra_only().optimize(&e);
        assert!(trace
            .fired
            .contains(&"intra.list_select_ordered".to_string()));
        assert!(matches!(&after, Expr::Apply { op, .. } if op == "select_ordered"));
        // Semantics preserved.
        let reg = Registry::standard();
        let a = evaluate(&e, &Env::new(), &reg, &mut ExecContext::new()).unwrap();
        let b = evaluate(&after, &Env::new(), &reg, &mut ExecContext::new()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unsorted_input_keeps_scan() {
        let e = Expr::list_select(
            Expr::constant(Value::int_list([5, 1, 3])),
            Value::Int(1),
            Value::Int(3),
        );
        let (after, trace) = intra_only().optimize(&e);
        assert_eq!(after, e);
        assert!(trace.fired.is_empty());
    }

    #[test]
    fn variable_input_keeps_scan() {
        let e = Expr::list_select(Expr::var("l"), Value::Int(1), Value::Int(3));
        let (after, _) = intra_only().optimize(&e);
        assert!(matches!(&after, Expr::Apply { op, .. } if op == "select"));
    }

    #[test]
    fn bag_select_over_provable_canonical_rep() {
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::var("l")),
            Value::Int(0),
            Value::Int(9),
        );
        let (after, trace) = intra_only().optimize(&e);
        assert!(trace
            .fired
            .contains(&"intra.bag_select_ordered".to_string()));
        assert!(matches!(
            &after,
            Expr::Apply { ext: ExtensionId::Bag, op, .. } if op == "select_ordered"
        ));
    }

    #[test]
    fn set_member_ordered_on_canonical_set() {
        let e = Expr::set_member(
            Expr::projecttoset(Expr::projecttobag(Expr::var("l"))),
            Value::Int(5),
        );
        let (after, trace) = intra_only().optimize(&e);
        assert!(trace
            .fired
            .contains(&"intra.set_member_ordered".to_string()));
        assert!(matches!(&after, Expr::Apply { op, .. } if op == "member_ordered"));
    }

    #[test]
    fn rank_topn_fuses() {
        let e = Expr::mm_topn(Expr::mm_rank(Expr::var("q")), 10);
        let (after, trace) = intra_only().optimize(&e);
        assert!(trace
            .fired
            .contains(&"intra.mm_rank_topn_fusion".to_string()));
        match &after {
            Expr::Apply { ext, op, args } => {
                assert_eq!(*ext, ExtensionId::MmRank);
                assert_eq!(op, "rank_topn");
                assert_eq!(args[0], Expr::var("q"));
                assert_eq!(args[1], Expr::Const(Value::Int(10)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn topn_over_non_rank_is_untouched() {
        let e = Expr::mm_topn(Expr::var("r"), 10);
        let (after, _) = intra_only().optimize(&e);
        assert_eq!(after, e);
    }
}
