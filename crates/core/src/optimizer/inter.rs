//! The inter-object optimizer layer — the paper's contribution.
//!
//! Rules here match patterns spanning operators of **two different
//! extensions**, the optimization "not shown in literature before" that
//! neither a general logical optimizer (which cannot see inside extension
//! semantics) nor E-ADT-style intra-object optimizers (which only see their
//! own extension) can perform:
//!
//! * `BAG.select ∘ LIST.projecttobag` → `LIST.projecttobag ∘ LIST.select`
//!   (the paper's Example 1 — selection crosses the representation change),
//! * the analogous `SET.select ∘ BAG.projecttoset` pushdown,
//! * aggregate shortcuts (`BAG.count ∘ LIST.projecttobag` → `LIST.length`),
//! * top-N pushdown from LIST into MMRANK across `projecttolist` — the
//!   rewrite that makes ranked retrieval stop early.

use crate::expr::{Expr, ExtensionId};
use crate::optimizer::Rule;

/// The inter-object rule set.
pub fn rules() -> &'static [Rule] {
    &[
        Rule {
            name: "inter.bag_select_over_projecttobag",
            apply: bag_select_over_projecttobag,
        },
        Rule {
            name: "inter.set_select_over_projecttoset",
            apply: set_select_over_projecttoset,
        },
        Rule {
            name: "inter.count_over_projecttobag",
            apply: count_over_projecttobag,
        },
        Rule {
            name: "inter.sum_over_projecttobag",
            apply: sum_over_projecttobag,
        },
        Rule {
            name: "inter.member_over_projecttoset",
            apply: member_over_projecttoset,
        },
        Rule {
            name: "inter.firstn_over_mm_projecttolist",
            apply: firstn_over_mm_projecttolist,
        },
        Rule {
            name: "inter.length_over_mm_projecttolist",
            apply: length_over_mm_projecttolist,
        },
    ]
}

fn as_apply<'e>(e: &'e Expr, ext: ExtensionId, op: &str) -> Option<&'e [Expr]> {
    match e {
        Expr::Apply {
            ext: x,
            op: o,
            args,
        } if *x == ext && o == op => Some(args),
        _ => None,
    }
}

/// Example 1: `BAG.select(LIST.projecttobag(l), lo, hi)` →
/// `LIST.projecttobag(LIST.select(l, lo, hi))`.
///
/// Legal because `projecttobag` only forgets order, and range selection is
/// order-insensitive on the element multiset. Profitable because the
/// projection now materializes only the selected elements — and because the
/// pushed-down LIST.select can later become a binary search when the list's
/// order is known.
fn bag_select_over_projecttobag(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::Bag, "select")?;
    let inner = as_apply(&outer[0], ExtensionId::List, "projecttobag")?;
    let pushed = Expr::Apply {
        ext: ExtensionId::List,
        op: "select".to_owned(),
        args: vec![inner[0].clone(), outer[1].clone(), outer[2].clone()],
    };
    Some(Expr::projecttobag(pushed))
}

/// `SET.select(BAG.projecttoset(b), lo, hi)` →
/// `BAG.projecttoset(BAG.select(b, lo, hi))`.
fn set_select_over_projecttoset(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::Set, "select")?;
    let inner = as_apply(&outer[0], ExtensionId::Bag, "projecttoset")?;
    let pushed = Expr::Apply {
        ext: ExtensionId::Bag,
        op: "select".to_owned(),
        args: vec![inner[0].clone(), outer[1].clone(), outer[2].clone()],
    };
    Some(Expr::projecttoset(pushed))
}

/// `BAG.count(LIST.projecttobag(l))` → `LIST.length(l)` — the projection
/// preserves cardinality, so it need not be materialized at all.
fn count_over_projecttobag(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::Bag, "count")?;
    let inner = as_apply(&outer[0], ExtensionId::List, "projecttobag")?;
    Some(Expr::list_length(inner[0].clone()))
}

/// `BAG.sum(LIST.projecttobag(l))` → `LIST.sum(l)`.
fn sum_over_projecttobag(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::Bag, "sum")?;
    let inner = as_apply(&outer[0], ExtensionId::List, "projecttobag")?;
    Some(Expr::list_sum(inner[0].clone()))
}

/// `SET.member(BAG.projecttoset(b), v)` → `BAG.contains(b, v)`.
fn member_over_projecttoset(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::Set, "member")?;
    let inner = as_apply(&outer[0], ExtensionId::Bag, "projecttoset")?;
    Some(Expr::Apply {
        ext: ExtensionId::Bag,
        op: "contains".to_owned(),
        args: vec![inner[0].clone(), outer[1].clone()],
    })
}

/// `LIST.firstn(MMRANK.projecttolist(r), n)` →
/// `MMRANK.projecttolist(MMRANK.topn(r, n))` — the top-N crosses into the
/// ranking extension, where it can later fuse with `rank` itself
/// (`rank_topn`) and stop retrieval early.
fn firstn_over_mm_projecttolist(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::List, "firstn")?;
    let inner = as_apply(&outer[0], ExtensionId::MmRank, "projecttolist")?;
    let n = match &outer[1] {
        Expr::Const(v) => v.as_int()?,
        _ => return None,
    };
    Some(Expr::mm_projecttolist(Expr::mm_topn(inner[0].clone(), n)))
}

/// `LIST.length(MMRANK.projecttolist(r))` — still requires materializing the
/// ranked list, but the projection itself is dropped.
fn length_over_mm_projecttolist(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::List, "length")?;
    let inner = as_apply(&outer[0], ExtensionId::MmRank, "projecttolist")?;
    Some(Expr::Apply {
        ext: ExtensionId::MmRank,
        op: "count".to_owned(),
        args: vec![inner[0].clone()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{evaluate, Env};
    use crate::ext::{ExecContext, Registry};
    use crate::optimizer::{Optimizer, OptimizerConfig};
    use crate::value::Value;

    fn inter_only() -> Optimizer {
        Optimizer::new(OptimizerConfig {
            logical: false,
            inter_object: true,
            intra_object: false,
            max_passes: 8,
        })
    }

    fn assert_same_result(before: &Expr) -> (u64, u64) {
        let (after, _) = inter_only().optimize(before);
        let reg = Registry::standard();
        let mut ctx_b = ExecContext::new();
        let a = evaluate(before, &Env::new(), &reg, &mut ctx_b).unwrap();
        let mut ctx_a = ExecContext::new();
        let b = evaluate(&after, &Env::new(), &reg, &mut ctx_a).unwrap();
        assert_eq!(a, b, "rewrite changed semantics:\n  {before}\n  {after}");
        (ctx_b.elements_processed, ctx_a.elements_processed)
    }

    #[test]
    fn example_one_rewrite_fires_and_preserves_semantics() {
        // The paper's Example 1, literally.
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::constant(Value::int_list([1, 2, 3, 4, 4, 5]))),
            Value::Int(2),
            Value::Int(4),
        );
        let (after, trace) = inter_only().optimize(&e);
        assert!(trace
            .fired
            .contains(&"inter.bag_select_over_projecttobag".to_string()));
        assert_eq!(
            after.to_string(),
            "LIST.projecttobag(LIST.select([1, 2, 3, 4, 4, 5], 2, 4))"
        );
        let (work_before, work_after) = assert_same_result(&e);
        assert!(work_after < work_before, "{work_after} !< {work_before}");
    }

    #[test]
    fn example_one_result_is_papers_expected_bag() {
        let e = Expr::bag_select(
            Expr::projecttobag(Expr::constant(Value::int_list([1, 2, 3, 4, 4, 5]))),
            Value::Int(2),
            Value::Int(4),
        );
        let reg = Registry::standard();
        let v = evaluate(&e, &Env::new(), &reg, &mut ExecContext::new()).unwrap();
        assert_eq!(
            v,
            Value::bag(vec![
                Value::Int(2),
                Value::Int(3),
                Value::Int(4),
                Value::Int(4)
            ])
        );
    }

    #[test]
    fn set_select_pushdown() {
        let bag = Expr::constant(Value::bag(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(2),
            Value::Int(5),
        ]));
        let e = Expr::set_select(Expr::projecttoset(bag), Value::Int(2), Value::Int(5));
        let (after, trace) = inter_only().optimize(&e);
        assert!(trace
            .fired
            .contains(&"inter.set_select_over_projecttoset".to_string()));
        assert!(matches!(
            &after,
            Expr::Apply { ext: ExtensionId::Bag, op, .. } if op == "projecttoset"
        ));
        assert_same_result(&e);
    }

    #[test]
    fn count_and_sum_shortcuts() {
        let l = Expr::constant(Value::int_list([4, 7, 9]));
        let count = Expr::bag_count(Expr::projecttobag(l.clone()));
        let (after, _) = inter_only().optimize(&count);
        assert_eq!(after, Expr::list_length(l.clone()));
        assert_same_result(&count);

        let sum = Expr::bag_sum(Expr::projecttobag(l.clone()));
        let (after, _) = inter_only().optimize(&sum);
        assert_eq!(after, Expr::list_sum(l));
        assert_same_result(&sum);
    }

    #[test]
    fn member_pushdown() {
        let bag = Expr::constant(Value::bag(vec![Value::Int(3), Value::Int(3)]));
        let e = Expr::set_member(Expr::projecttoset(bag), Value::Int(3));
        let (after, trace) = inter_only().optimize(&e);
        assert!(trace
            .fired
            .contains(&"inter.member_over_projecttoset".to_string()));
        assert!(matches!(
            &after,
            Expr::Apply { ext: ExtensionId::Bag, op, .. } if op == "contains"
        ));
        assert_same_result(&e);
    }

    #[test]
    fn firstn_crosses_into_mmrank() {
        let r = Expr::constant(Value::ranked(vec![(1, 0.9), (2, 0.8), (3, 0.7)]));
        let e = Expr::list_firstn(Expr::mm_projecttolist(r), 2);
        let (after, trace) = inter_only().optimize(&e);
        assert!(trace
            .fired
            .contains(&"inter.firstn_over_mm_projecttolist".to_string()));
        // Shape: MMRANK.projecttolist(MMRANK.topn(r, 2)).
        let args = match &after {
            Expr::Apply {
                ext: ExtensionId::MmRank,
                op,
                args,
            } if op == "projecttolist" => args,
            other => panic!("unexpected {other}"),
        };
        assert!(matches!(
            &args[0],
            Expr::Apply { ext: ExtensionId::MmRank, op, .. } if op == "topn"
        ));
        assert_same_result(&e);
    }

    #[test]
    fn rules_do_not_fire_on_same_extension_chains() {
        // select over a *bag-valued* variable is not a cross-extension
        // pattern; nothing should fire.
        let e = Expr::bag_select(Expr::var("b"), Value::Int(0), Value::Int(9));
        let (after, trace) = inter_only().optimize(&e);
        assert_eq!(after, e);
        assert!(trace.fired.is_empty());
    }

    #[test]
    fn nested_rewrites_cascade() {
        // count(projecttobag(select-chain)) collapses fully.
        let e = Expr::bag_count(Expr::projecttobag(Expr::list_select(
            Expr::constant(Value::int_list([1, 2, 3])),
            Value::Int(1),
            Value::Int(2),
        )));
        let (after, _) = inter_only().optimize(&e);
        assert!(matches!(
            &after,
            Expr::Apply { ext: ExtensionId::List, op, .. } if op == "length"
        ));
        assert_same_result(&e);
    }
}
