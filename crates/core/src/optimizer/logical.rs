//! The logical (extension-agnostic) optimizer layer.
//!
//! Classic algebraic rewrites that never need to know what an extension's
//! operators *mean* physically — only their algebraic laws: selection
//! fusion, top-N fusion, sort idempotence and elimination.

use crate::expr::{Expr, ExtensionId};
use crate::optimizer::{provably_sorted_asc, Rule};
use crate::value::Value;

/// The logical rule set.
pub fn rules() -> &'static [Rule] {
    &[
        Rule {
            name: "logical.select_fusion",
            apply: select_fusion,
        },
        Rule {
            name: "logical.topn_fusion",
            apply: topn_fusion,
        },
        Rule {
            name: "logical.firstn_fusion",
            apply: firstn_fusion,
        },
        Rule {
            name: "logical.sort_idempotent",
            apply: sort_idempotent,
        },
        Rule {
            name: "logical.sort_elimination",
            apply: sort_elimination,
        },
        Rule {
            name: "logical.cutoff_fusion",
            apply: cutoff_fusion,
        },
        Rule {
            name: "logical.mm_topn_fusion",
            apply: mm_topn_fusion,
        },
    ]
}

fn as_apply<'e>(e: &'e Expr, ext: ExtensionId, op: &str) -> Option<&'e [Expr]> {
    match e {
        Expr::Apply {
            ext: x,
            op: o,
            args,
        } if *x == ext && o == op => Some(args),
        _ => None,
    }
}

fn const_value(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Const(v) => Some(v),
        _ => None,
    }
}

/// `X.select(X.select(e, a, b), c, d)` → `X.select(e, max(a,c), min(b,d))`
/// for X ∈ {LIST, BAG, SET}, when all bounds are constants.
fn select_fusion(e: &Expr) -> Option<Expr> {
    for ext in [ExtensionId::List, ExtensionId::Bag, ExtensionId::Set] {
        for op in ["select", "select_ordered"] {
            let Some(outer) = as_apply(e, ext, op) else {
                continue;
            };
            let (c, d) = (const_value(&outer[1])?, const_value(&outer[2])?);
            // Inner must be the same extension's select (either variant).
            for inner_op in ["select", "select_ordered"] {
                let Some(inner) = as_apply(&outer[0], ext, inner_op) else {
                    continue;
                };
                let (a, b) = (const_value(&inner[1])?, const_value(&inner[2])?);
                let lo = if a.total_cmp(c) == std::cmp::Ordering::Less {
                    c.clone()
                } else {
                    a.clone()
                };
                let hi = if b.total_cmp(d) == std::cmp::Ordering::Greater {
                    d.clone()
                } else {
                    b.clone()
                };
                return Some(Expr::Apply {
                    ext,
                    op: "select".to_owned(),
                    args: vec![inner[0].clone(), Expr::Const(lo), Expr::Const(hi)],
                });
            }
        }
    }
    None
}

/// `LIST.topn(LIST.topn(e, n), m)` → `LIST.topn(e, min(n, m))`.
fn topn_fusion(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::List, "topn")?;
    let m = const_value(&outer[1])?.as_int()?;
    let inner = as_apply(&outer[0], ExtensionId::List, "topn")?;
    let n = const_value(&inner[1])?.as_int()?;
    Some(Expr::list_topn(inner[0].clone(), n.min(m)))
}

/// `LIST.firstn(LIST.firstn(e, n), m)` → `LIST.firstn(e, min(n, m))`.
fn firstn_fusion(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::List, "firstn")?;
    let m = const_value(&outer[1])?.as_int()?;
    let inner = as_apply(&outer[0], ExtensionId::List, "firstn")?;
    let n = const_value(&inner[1])?.as_int()?;
    Some(Expr::list_firstn(inner[0].clone(), n.min(m)))
}

/// `LIST.sort(LIST.sort(e))` → `LIST.sort(e)`.
fn sort_idempotent(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::List, "sort")?;
    let _inner = as_apply(&outer[0], ExtensionId::List, "sort")?;
    Some(outer[0].clone())
}

/// `LIST.sort(e)` → `e` when `e` is provably sorted.
fn sort_elimination(e: &Expr) -> Option<Expr> {
    let args = as_apply(e, ExtensionId::List, "sort")?;
    if provably_sorted_asc(&args[0]) {
        Some(args[0].clone())
    } else {
        None
    }
}

/// `MMRANK.cutoff(MMRANK.cutoff(e, a), b)` → `MMRANK.cutoff(e, max(a, b))`.
fn cutoff_fusion(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::MmRank, "cutoff")?;
    let b = const_value(&outer[1])?.as_float()?;
    let inner = as_apply(&outer[0], ExtensionId::MmRank, "cutoff")?;
    let a = const_value(&inner[1])?.as_float()?;
    Some(Expr::mm_cutoff(inner[0].clone(), a.max(b)))
}

/// `MMRANK.topn(MMRANK.topn(e, n), m)` → `MMRANK.topn(e, min(n, m))`.
fn mm_topn_fusion(e: &Expr) -> Option<Expr> {
    let outer = as_apply(e, ExtensionId::MmRank, "topn")?;
    let m = const_value(&outer[1])?.as_int()?;
    let inner = as_apply(&outer[0], ExtensionId::MmRank, "topn")?;
    let n = const_value(&inner[1])?.as_int()?;
    Some(Expr::mm_topn(inner[0].clone(), n.min(m)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{evaluate, Env};
    use crate::ext::{ExecContext, Registry};
    use crate::optimizer::{Optimizer, OptimizerConfig};

    fn logical_only() -> Optimizer {
        Optimizer::new(OptimizerConfig {
            logical: true,
            inter_object: false,
            intra_object: false,
            max_passes: 8,
        })
    }

    fn assert_semantics_preserved(before: &Expr) {
        let (after, _) = logical_only().optimize(before);
        let reg = Registry::standard();
        let a = evaluate(before, &Env::new(), &reg, &mut ExecContext::new()).unwrap();
        let b = evaluate(&after, &Env::new(), &reg, &mut ExecContext::new()).unwrap();
        assert_eq!(a, b, "rewrite changed semantics:\n  {before}\n  {after}");
    }

    #[test]
    fn select_fusion_intersects_ranges() {
        let inner = Expr::list_select(
            Expr::constant(Value::int_list([1, 2, 3, 4, 5, 6])),
            Value::Int(2),
            Value::Int(6),
        );
        let e = Expr::list_select(inner, Value::Int(1), Value::Int(4));
        let (out, trace) = logical_only().optimize(&e);
        assert!(trace.fired.contains(&"logical.select_fusion".to_string()));
        // Single select remains.
        match &out {
            Expr::Apply { op, args, .. } => {
                assert_eq!(op, "select");
                assert_eq!(const_value(&args[1]).unwrap(), &Value::Int(2));
                assert_eq!(const_value(&args[2]).unwrap(), &Value::Int(4));
            }
            other => panic!("unexpected {other}"),
        }
        assert_semantics_preserved(&e);
    }

    #[test]
    fn bag_and_set_select_fusion() {
        let bag = Expr::constant(Value::bag(vec![Value::Int(1), Value::Int(5)]));
        let e = Expr::bag_select(
            Expr::bag_select(bag, Value::Int(0), Value::Int(9)),
            Value::Int(2),
            Value::Int(8),
        );
        assert_semantics_preserved(&e);
        let (out, _) = logical_only().optimize(&e);
        assert_eq!(out.size(), 4); // one select over const + 2 bounds
    }

    #[test]
    fn topn_and_firstn_fusion_take_minimum() {
        let e = Expr::list_topn(
            Expr::list_topn(Expr::constant(Value::int_list([5, 3, 9, 1])), 3),
            2,
        );
        let (out, _) = logical_only().optimize(&e);
        match &out {
            Expr::Apply { op, args, .. } => {
                assert_eq!(op, "topn");
                assert_eq!(const_value(&args[1]).unwrap(), &Value::Int(2));
            }
            other => panic!("unexpected {other}"),
        }
        assert_semantics_preserved(&e);

        let e2 = Expr::list_firstn(
            Expr::list_firstn(Expr::constant(Value::int_list([5, 3, 9, 1])), 2),
            3,
        );
        assert_semantics_preserved(&e2);
    }

    #[test]
    fn sort_idempotence_and_elimination() {
        let e = Expr::list_sort(Expr::list_sort(Expr::var("x")));
        let (out, trace) = logical_only().optimize(&e);
        assert_eq!(out, Expr::list_sort(Expr::var("x")));
        assert!(trace.fired.contains(&"logical.sort_idempotent".to_string()));

        let sorted_const = Expr::constant(Value::int_list([1, 2, 3]));
        let e2 = Expr::list_sort(sorted_const.clone());
        let (out2, _) = logical_only().optimize(&e2);
        assert_eq!(out2, sorted_const);
    }

    #[test]
    fn sort_of_unsorted_const_not_eliminated() {
        let e = Expr::list_sort(Expr::constant(Value::int_list([3, 1])));
        let (out, _) = logical_only().optimize(&e);
        assert!(matches!(&out, Expr::Apply { op, .. } if op == "sort"));
    }

    #[test]
    fn cutoff_fusion_takes_max_threshold() {
        let r = Expr::constant(Value::ranked(vec![(1, 0.9), (2, 0.5), (3, 0.1)]));
        let e = Expr::mm_cutoff(Expr::mm_cutoff(r, 0.3), 0.6);
        let (out, _) = logical_only().optimize(&e);
        match &out {
            Expr::Apply { op, args, .. } => {
                assert_eq!(op, "cutoff");
                assert_eq!(const_value(&args[1]).unwrap(), &Value::Float(0.6));
            }
            other => panic!("unexpected {other}"),
        }
        assert_semantics_preserved(&e);
    }

    #[test]
    fn mm_topn_fusion() {
        let r = Expr::constant(Value::ranked(vec![(1, 0.9), (2, 0.5)]));
        let e = Expr::mm_topn(Expr::mm_topn(r, 5), 1);
        assert_semantics_preserved(&e);
        let (out, _) = logical_only().optimize(&e);
        match &out {
            Expr::Apply { op, args, .. } => {
                assert_eq!(op, "topn");
                assert_eq!(const_value(&args[1]).unwrap(), &Value::Int(1));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn no_rule_fires_on_simple_plans() {
        let e = Expr::list_length(Expr::var("x"));
        let (out, trace) = logical_only().optimize(&e);
        assert_eq!(out, e);
        assert!(trace.fired.is_empty());
    }
}
