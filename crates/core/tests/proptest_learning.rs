//! Property tests for the planner's calibration substrate:
//! `cost::learning::LearnedDistribution`.
//!
//! The closed planning loop feeds every measured execution into a
//! learned distribution and adopts its median as the pruned-DAAT cost
//! weight. A median that escaped the observed sample window would poison
//! every subsequent plan price, so these properties pin it inside the
//! window for *arbitrary* `observe()` sequences — any length (eviction
//! included), any value mix, NaNs interleaved.

use proptest::prelude::*;

use moa_core::LearnedDistribution;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever is observed, in whatever order, a fitted median lies
    /// within the closed [min, max] window of the observations. (The
    /// retained sample is always a subset of the full sequence, and the
    /// fitted histogram's support never leaves the retained sample.)
    #[test]
    fn median_stays_within_the_observed_window(
        values in proptest::collection::vec(-1.0e6f64..1.0e6, 1..400),
        min_sample in 2usize..64,
        buckets in 1usize..40,
    ) {
        let mut d = LearnedDistribution::new(min_sample, buckets);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (i, &v) in values.iter().enumerate() {
            d.observe(v);
            lo = lo.min(v);
            hi = hi.max(v);
            if let Some(m) = d.median() {
                prop_assert!(
                    (lo..=hi).contains(&m),
                    "after {} observations: median {m} outside [{lo}, {hi}]",
                    i + 1
                );
            }
        }
        // Once enough observations exist the fit must have happened.
        if values.len() >= min_sample {
            prop_assert!(d.is_fitted());
            prop_assert!(d.median().is_some());
        }
    }

    /// NaN observations are dropped without disturbing the window: the
    /// median of a NaN-interleaved sequence still sits inside the window
    /// of the finite values alone.
    #[test]
    fn nan_observations_never_widen_the_window(
        values in proptest::collection::vec(0.0f64..1.0, 8..100),
        nan_every in 1usize..5,
    ) {
        let mut d = LearnedDistribution::new(4, 8);
        for (i, &v) in values.iter().enumerate() {
            d.observe(v);
            if i % nan_every == 0 {
                d.observe(f64::NAN);
            }
        }
        prop_assert_eq!(d.observations(), values.len());
        let m = d.median().expect("enough finite observations to fit");
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((lo..=hi).contains(&m), "median {m} outside [{lo}, {hi}]");
    }

    /// A constant stream's median collapses onto that constant (up to
    /// one histogram bucket of interpolation slack).
    #[test]
    fn constant_stream_median_is_the_constant(
        c in -1.0e3f64..1.0e3,
        reps in 8usize..200,
        buckets in 1usize..32,
    ) {
        let mut d = LearnedDistribution::new(4, buckets);
        for _ in 0..reps {
            d.observe(c);
        }
        let m = d.median().expect("fitted");
        prop_assert!(
            (m - c).abs() <= 1e-6 * c.abs().max(1.0),
            "median {m} drifted from constant {c}"
        );
    }

    /// The window property survives eviction: sequences longer than the
    /// retention cap keep the median inside the all-time window (the
    /// retained suffix is a subset of it), and the sample stays bounded.
    #[test]
    fn long_sequences_stay_bounded_and_windowed(
        seed_values in proptest::collection::vec(0.0f64..100.0, 16..64),
        rounds in 1usize..4,
    ) {
        let mut d = LearnedDistribution::new(8, 16);
        // Replay the block enough times to cross the 4096-entry cap.
        let total = rounds * 4096 / seed_values.len().max(1) + 1;
        for _ in 0..total {
            d.observe_all(&seed_values);
        }
        prop_assert!(d.observations() <= 4096);
        let m = d.median().expect("fitted long ago");
        let lo = seed_values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = seed_values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((lo..=hi).contains(&m), "median {m} outside [{lo}, {hi}]");
    }
}
