//! Optimizer soundness fuzzing: random well-typed expression pipelines are
//! executed with and without optimization; results must be identical.
//! This is the plan-equivalence property that guards every rewrite rule at
//! once — including interactions between rules that unit tests would miss.

use proptest::prelude::*;

use moa_core::{parse_expr, Env, Expr, Session, Value};

/// A recipe for one pipeline stage over a LIST-valued expression.
#[derive(Debug, Clone)]
enum ListStage {
    Select(i64, i64),
    Sort,
    Reverse,
    TopN(usize),
    FirstN(usize),
}

/// Terminal transformation applied after the list pipeline.
#[derive(Debug, Clone)]
enum Terminal {
    Keep,
    BagSelect(i64, i64),
    BagCount,
    BagSum,
    SetSelect(i64, i64),
    SetMember(i64),
    Length,
    Sum,
}

fn stage_strategy() -> impl Strategy<Value = ListStage> {
    prop_oneof![
        (-100i64..100, 0i64..100).prop_map(|(lo, span)| ListStage::Select(lo, lo + span)),
        Just(ListStage::Sort),
        Just(ListStage::Reverse),
        (0usize..20).prop_map(ListStage::TopN),
        (0usize..20).prop_map(ListStage::FirstN),
    ]
}

fn terminal_strategy() -> impl Strategy<Value = Terminal> {
    prop_oneof![
        Just(Terminal::Keep),
        (-100i64..100, 0i64..100).prop_map(|(lo, span)| Terminal::BagSelect(lo, lo + span)),
        Just(Terminal::BagCount),
        Just(Terminal::BagSum),
        (-100i64..100, 0i64..100).prop_map(|(lo, span)| Terminal::SetSelect(lo, lo + span)),
        (-100i64..100).prop_map(Terminal::SetMember),
        Just(Terminal::Length),
        Just(Terminal::Sum),
    ]
}

fn build_expr(items: Vec<i64>, stages: Vec<ListStage>, terminal: Terminal) -> Expr {
    let mut e = Expr::constant(Value::int_list(items));
    for s in stages {
        e = match s {
            ListStage::Select(lo, hi) => Expr::list_select(e, Value::Int(lo), Value::Int(hi)),
            ListStage::Sort => Expr::list_sort(e),
            ListStage::Reverse => Expr::apply(moa_core::ExtensionId::List, "reverse", vec![e]),
            ListStage::TopN(n) => Expr::list_topn(e, n as i64),
            ListStage::FirstN(n) => Expr::list_firstn(e, n as i64),
        };
    }
    match terminal {
        Terminal::Keep => e,
        Terminal::BagSelect(lo, hi) => {
            Expr::bag_select(Expr::projecttobag(e), Value::Int(lo), Value::Int(hi))
        }
        Terminal::BagCount => Expr::bag_count(Expr::projecttobag(e)),
        Terminal::BagSum => Expr::bag_sum(Expr::projecttobag(e)),
        Terminal::SetSelect(lo, hi) => Expr::set_select(
            Expr::projecttoset(Expr::projecttobag(e)),
            Value::Int(lo),
            Value::Int(hi),
        ),
        Terminal::SetMember(v) => {
            Expr::set_member(Expr::projecttoset(Expr::projecttobag(e)), Value::Int(v))
        }
        Terminal::Length => Expr::list_length(e),
        Terminal::Sum => Expr::list_sum(e),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_pipelines_are_rewrite_sound(
        items in proptest::collection::vec(-100i64..100, 0..80),
        stages in proptest::collection::vec(stage_strategy(), 0..5),
        terminal in terminal_strategy(),
    ) {
        let expr = build_expr(items, stages, terminal);
        let session = Session::new();
        // Type checks before and after optimization.
        let t_before = session.type_check(&expr, &Env::new()).unwrap();
        let (optimized_plan, _) = session.optimize(&expr);
        let t_after = session.type_check(&optimized_plan, &Env::new()).unwrap();
        prop_assert!(
            t_before.compatible(&t_after),
            "type changed: {t_before} -> {t_after}"
        );
        // Results agree.
        let optimized = session.run(&expr, &Env::new()).unwrap();
        let baseline = session.run_unoptimized(&expr, &Env::new()).unwrap();
        prop_assert_eq!(
            optimized.value,
            baseline.value,
            "plan:\n  before: {}\n  after:  {}",
            expr,
            optimized.executed_plan
        );
    }

    #[test]
    fn display_parse_roundtrip_on_random_pipelines(
        items in proptest::collection::vec(-50i64..50, 0..20),
        stages in proptest::collection::vec(stage_strategy(), 0..4),
        terminal in terminal_strategy(),
    ) {
        let expr = build_expr(items, stages, terminal);
        let text = expr.to_string();
        let reparsed = parse_expr(&text).unwrap();
        prop_assert_eq!(&reparsed, &expr, "round-trip failed for {}", text);
        // And the reparsed expression evaluates identically.
        let session = Session::new();
        let a = session.run(&expr, &Env::new()).unwrap();
        let b = session.run(&reparsed, &Env::new()).unwrap();
        prop_assert_eq!(a.value, b.value);
    }

    #[test]
    fn estimates_are_finite_and_nonnegative(
        items in proptest::collection::vec(-100i64..100, 0..60),
        stages in proptest::collection::vec(stage_strategy(), 0..5),
        terminal in terminal_strategy(),
    ) {
        let expr = build_expr(items, stages, terminal);
        let session = Session::new();
        let est = session.estimate(&expr).unwrap();
        prop_assert!(est.cost.is_finite() && est.cost >= 0.0);
        prop_assert!(est.rows.is_finite() && est.rows >= 0.0);
        // The optimized plan's estimate is also well-formed and not
        // dramatically worse than the original's.
        let (optimized, _) = session.optimize(&expr);
        let est_opt = session.estimate(&optimized).unwrap();
        prop_assert!(est_opt.cost.is_finite() && est_opt.cost >= 0.0);
    }
}
