//! EXPLAIN ANALYZE oracle: analyzed executions are measurement only.
//!
//! The acceptance bar for the telemetry work is that turning analysis on
//! changes *nothing* about the answer: for every feasible physical
//! strategy, the `(doc, score)` pairs returned through
//! [`IrRuntime::execute_plan_analyzed`] must be bit-identical to a
//! direct, uninstrumented [`moa_ir::EngineSet`] execution of the same
//! plan over the same index. On top of that oracle, the rendered ANALYZE
//! text must name every feasible strategy with estimated-vs-observed
//! columns, and each analyzed row must leave a misestimate sample in the
//! session's metrics registry.

use std::sync::Arc;

use moa_core::exec::Env;
use moa_core::expr::Expr;
use moa_core::ext::IrRuntime;
use moa_core::{Planner, Session};
use moa_corpus::{Collection, CollectionConfig};
use moa_ir::{EngineSet, FragmentSpec, FragmentedIndex, InvertedIndex, RankingModel, SwitchPolicy};

const TOP_N: i64 = 10;

fn fragments() -> Arc<FragmentedIndex> {
    let c = Collection::generate(CollectionConfig::tiny()).unwrap();
    let idx = Arc::new(InvertedIndex::from_collection(&c));
    Arc::new(FragmentedIndex::build(idx, FragmentSpec::VolumeFraction(0.3)).unwrap())
}

fn planned_runtime(frag: Arc<FragmentedIndex>) -> Arc<IrRuntime> {
    Arc::new(IrRuntime::planned(
        frag,
        RankingModel::default(),
        SwitchPolicy::default(),
        Planner::default(),
    ))
}

fn query_terms(rt: &IrRuntime) -> Vec<u32> {
    let terms = rt.fragments().index().terms_by_df_asc();
    vec![terms[terms.len() - 1], terms[terms.len() / 2], terms[0]]
}

fn rank_expr(terms: &[u32]) -> Expr {
    let q = moa_core::Value::int_list(terms.iter().map(|&t| i64::from(t)));
    Expr::mm_topn(Expr::mm_rank(Expr::constant(q)), TOP_N)
}

/// Every feasible strategy's analyzed answer is bit-identical to a
/// direct uninstrumented execution of the same plan.
#[test]
fn analyzed_execution_is_bit_identical_to_direct_execution() {
    let frag = fragments();
    let rt = planned_runtime(Arc::clone(&frag));
    let terms = query_terms(&rt);
    let n = TOP_N as usize;

    let decision = rt.plan_for(&terms, n).unwrap();
    let mut oracle = EngineSet::new(frag, RankingModel::default(), SwitchPolicy::default());
    let mut checked = 0;
    for alt in decision.alternatives.iter().filter(|a| a.feasible) {
        let (analyzed, phases, _wall) = rt.execute_plan_analyzed(alt.plan, &terms, n).unwrap();
        let direct = oracle.execute(alt.plan, &terms, n).unwrap();
        assert_eq!(
            analyzed.top,
            direct.top,
            "analyzed {} diverged from direct execution",
            alt.plan.name()
        );
        assert_eq!(analyzed.postings_scanned, direct.postings_scanned);
        assert!(
            !phases.is_empty(),
            "{} recorded no stage clocks",
            alt.plan.name()
        );
        checked += 1;
    }
    assert!(checked >= 2, "expected several feasible strategies");
}

/// The rendered ANALYZE output names every feasible strategy, marks the
/// chosen one, and shows the per-stage walls and algebra section.
#[test]
fn explain_analyze_renders_every_feasible_strategy() {
    let rt = planned_runtime(fragments());
    let terms = query_terms(&rt);
    let s = Session::with_ir(Arc::clone(&rt));
    let e = rank_expr(&terms);

    let text = s.explain_analyze(&e, &Env::new()).unwrap();
    assert!(text.contains("== optimized plan =="));
    assert!(text.contains("== analyze: algebra execution =="));
    assert!(text.contains("== analyze: physical retrieval (estimated vs observed) =="));
    assert!(text.contains("== analyze: chosen-operator stage walls =="));
    assert!(text.contains("-> "), "chosen strategy must be marked");

    let decision = rt.plan_for(&terms, TOP_N as usize).unwrap();
    for alt in decision.alternatives.iter().filter(|a| a.feasible) {
        assert!(
            text.contains(alt.plan.name()),
            "missing feasible strategy {} in:\n{text}",
            alt.plan.name()
        );
    }
}

/// Each analyzed strategy records a `planner.misestimate.<operator>`
/// sample into the session registry.
#[test]
fn explain_analyze_records_misestimate_histograms() {
    let rt = planned_runtime(fragments());
    let terms = query_terms(&rt);
    let s = Session::with_ir(Arc::clone(&rt));
    let e = rank_expr(&terms);

    s.explain_analyze(&e, &Env::new()).unwrap();
    s.explain_analyze(&e, &Env::new()).unwrap();

    let decision = rt.plan_for(&terms, TOP_N as usize).unwrap();
    for alt in decision.alternatives.iter().filter(|a| a.feasible) {
        let h = s
            .metrics()
            .histogram(&format!("planner.misestimate.{}", alt.plan.name()));
        assert_eq!(h.count(), 2, "two ANALYZE runs, two samples per operator");
    }
    let text = s.metrics().render_text();
    assert!(text.contains("planner.misestimate."));
}

/// ANALYZE without an IR runtime (or without a rankable plan) still
/// executes the algebra and reports observed work.
#[test]
fn explain_analyze_degrades_without_ir() {
    let s = Session::new();
    let e = Expr::list_sum(Expr::constant(moa_core::Value::int_list([1, 2, 3])));
    let text = s.explain_analyze(&e, &Env::new()).unwrap();
    assert!(text.contains("== analyze: algebra execution =="));
    assert!(text.contains("observed work"));
    assert!(!text.contains("physical retrieval (estimated vs observed)"));
}
